//! Uniform serving dispatch over the parallel kernels.
//!
//! The per-bench binaries used to each carry their own match over
//! [`Workload`] deciding which CSR view (directed / symmetric / sorted) and
//! which kernel entry point to call. [`run_service`] centralizes that:
//! one [`ServiceGraph`] precomputes every view a servable workload needs,
//! and every kernel runs through the same
//! `(Workload, &ThreadPool, &ServiceGraph, source, &CancelToken)`
//! signature returning a typed [`ServiceOutput`]. The query engine
//! (`crates/engine`) and the bench binaries both dispatch through here, so
//! view-selection bugs can't diverge between them.

use graphbig_framework::csr::{BiCsr, Csr};
use graphbig_runtime::{CancelToken, Cancelled, ThreadPool};

use crate::parallel;
use crate::registry::Workload;

/// Precomputed CSR views shared by all servable workloads: the directed
/// bidirectional view (BFS direction optimization, SPath, DCentr) and the
/// symmetrized, adjacency-sorted undirected view (CComp, KCore, TC,
/// GColor — the same view their sequential oracles use).
pub struct ServiceGraph {
    bi: BiCsr,
    sym: Csr,
}

impl ServiceGraph {
    /// Build both views from a directed CSR snapshot.
    pub fn build(csr: Csr) -> Self {
        let mut sym = csr.symmetrize();
        sym.sort_adjacency();
        ServiceGraph {
            bi: BiCsr::directed(csr),
            sym,
        }
    }

    /// The directed view with its transpose.
    pub fn bi(&self) -> &BiCsr {
        &self.bi
    }

    /// The directed out-edge CSR.
    pub fn out(&self) -> &Csr {
        self.bi.out()
    }

    /// The symmetrized, adjacency-sorted undirected view.
    pub fn sym(&self) -> &Csr {
        &self.sym
    }

    /// Vertices in the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.bi.num_vertices()
    }

    /// Directed edges in the underlying graph.
    pub fn num_edges(&self) -> usize {
        self.bi.num_edges()
    }
}

/// Typed result of one service dispatch, one variant per kernel output
/// shape. [`ServiceOutput::digest`] folds any variant to a comparable
/// 64-bit fingerprint for the concurrent-vs-sequential oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceOutput {
    /// BFS levels (`-1` = unreached).
    Levels(Vec<i64>),
    /// Connected-component labels.
    Labels(Vec<u32>),
    /// k-core numbers.
    Cores(Vec<u32>),
    /// Shortest-path distances (`inf` = unreached).
    Distances(Vec<f32>),
    /// Normalized centrality scores.
    Scores(Vec<f64>),
    /// A scalar count (triangles).
    Count(u64),
    /// Graph-coloring colors.
    Colors(Vec<i64>),
}

impl ServiceOutput {
    /// FNV-1a-style mix over the output's canonical little-endian u64
    /// stream — bit-exact, so two runs digest equal iff their outputs are
    /// identical (floats compared by bit pattern). One multiply per
    /// element, not per byte: a serving mix digests every verified
    /// response, and the byte-at-a-time loop was a measurable fixed cost
    /// per request on large outputs (one word per vertex).
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(PRIME);
            // FNV's multiply alone mixes low bits upward only; fold the
            // high half back so per-word (vs per-byte) eating still
            // diffuses every input bit into the final value.
            h ^= h >> 29;
        };
        let mut tag = |t: &[u8; 8]| eat(u64::from_le_bytes(*t));
        match self {
            ServiceOutput::Levels(v) => {
                tag(b"levels\0\0");
                v.iter().for_each(|&x| eat(x as u64));
            }
            ServiceOutput::Labels(v) => {
                tag(b"labels\0\0");
                v.iter().for_each(|&x| eat(x as u64));
            }
            ServiceOutput::Cores(v) => {
                tag(b"cores\0\0\0");
                v.iter().for_each(|&x| eat(x as u64));
            }
            ServiceOutput::Distances(v) => {
                tag(b"dist\0\0\0\0");
                v.iter().for_each(|&x| eat(x.to_bits() as u64));
            }
            ServiceOutput::Scores(v) => {
                tag(b"scores\0\0");
                v.iter().for_each(|&x| eat(x.to_bits()));
            }
            ServiceOutput::Count(c) => {
                tag(b"count\0\0\0");
                eat(*c);
            }
            ServiceOutput::Colors(v) => {
                tag(b"colors\0\0");
                v.iter().for_each(|&x| eat(x as u64));
            }
        }
        h
    }
}

/// Why a service dispatch produced no output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The query's [`CancelToken`] fired mid-run.
    Cancelled,
    /// The workload has no CSR-snapshot serving entry point (the dynamic
    /// graph-update workloads mutate a `PropertyGraph` and the sampling /
    /// Brandes workloads have no parallel kernel yet).
    Unsupported(Workload),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Cancelled => f.write_str("query cancelled"),
            ServiceError::Unsupported(w) => write!(f, "workload {w} is not servable"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Cancelled> for ServiceError {
    fn from(_: Cancelled) -> Self {
        ServiceError::Cancelled
    }
}

/// True when [`run_service`] can execute `w` against a CSR snapshot.
pub fn servable(w: Workload) -> bool {
    matches!(
        w,
        Workload::Bfs
            | Workload::CComp
            | Workload::KCore
            | Workload::SPath
            | Workload::DCentr
            | Workload::Tc
            | Workload::GColor
    )
}

/// Run one workload against the precomputed views with the standard
/// serving signature. `source` matters only to the traversal-rooted
/// kernels (BFS, SPath); the whole-graph kernels ignore it. Kernels whose
/// runtime is a single parallel sweep (DCentr, TC, GColor) poll the token
/// only at entry; the iterative kernels poll at every superstep.
pub fn run_service(
    w: Workload,
    pool: &ThreadPool,
    g: &ServiceGraph,
    source: u32,
    cancel: &CancelToken,
) -> Result<ServiceOutput, ServiceError> {
    if cancel.trace_id() != 0 {
        use graphbig_telemetry::recorder;
        let widx = Workload::ALL.iter().position(|&x| x == w).unwrap_or(0);
        recorder::record(
            recorder::EventKind::KernelStart,
            cancel.trace_id(),
            widx as u64,
        );
    }
    match w {
        Workload::Bfs => {
            let (levels, _, _) = parallel::bfs_dir_opt_cancellable(pool, g.bi(), source, cancel)?;
            Ok(ServiceOutput::Levels(levels))
        }
        Workload::CComp => Ok(ServiceOutput::Labels(parallel::ccomp_cancellable(
            pool,
            g.sym(),
            cancel,
        )?)),
        Workload::KCore => Ok(ServiceOutput::Cores(parallel::kcore_cancellable(
            pool,
            g.sym(),
            cancel,
        )?)),
        Workload::SPath => Ok(ServiceOutput::Distances(parallel::spath_cancellable(
            pool,
            g.out(),
            source,
            cancel,
        )?)),
        Workload::DCentr => {
            cancel.check()?;
            Ok(ServiceOutput::Scores(parallel::dcentr(pool, g.out())))
        }
        Workload::Tc => {
            cancel.check()?;
            Ok(ServiceOutput::Count(parallel::tc(pool, g.sym())))
        }
        Workload::GColor => {
            cancel.check()?;
            Ok(ServiceOutput::Colors(parallel::gcolor(pool, g.sym())))
        }
        other => Err(ServiceError::Unsupported(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::Dataset;

    fn graph(n: usize) -> ServiceGraph {
        let g = Dataset::Ldbc.generate_with_vertices(n);
        ServiceGraph::build(Csr::from_graph(&g))
    }

    #[test]
    fn dispatch_matches_direct_kernel_calls() {
        let g = graph(250);
        let pool = ThreadPool::new(4);
        let live = CancelToken::new();
        match run_service(Workload::Bfs, &pool, &g, 0, &live).unwrap() {
            ServiceOutput::Levels(levels) => {
                assert_eq!(levels, parallel::bfs(&pool, g.out(), 0).0)
            }
            other => panic!("wrong shape: {other:?}"),
        }
        match run_service(Workload::CComp, &pool, &g, 0, &live).unwrap() {
            ServiceOutput::Labels(l) => assert_eq!(l, parallel::ccomp(&pool, g.sym())),
            other => panic!("wrong shape: {other:?}"),
        }
        match run_service(Workload::Tc, &pool, &g, 0, &live).unwrap() {
            ServiceOutput::Count(c) => assert_eq!(c, parallel::tc(&pool, g.sym())),
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn digests_separate_different_outputs() {
        let g = graph(200);
        let pool = ThreadPool::new(2);
        let live = CancelToken::new();
        let a = run_service(Workload::Bfs, &pool, &g, 0, &live).unwrap();
        let b = run_service(Workload::Bfs, &pool, &g, 1, &live).unwrap();
        assert_eq!(a.digest(), a.clone().digest());
        assert_ne!(a.digest(), b.digest(), "different sources, different BFS");
        // Same length but different type must not collide via the tag.
        assert_ne!(
            ServiceOutput::Labels(vec![1, 2, 3]).digest(),
            ServiceOutput::Cores(vec![1, 2, 3]).digest()
        );
    }

    #[test]
    fn cancelled_token_maps_to_service_error() {
        let g = graph(100);
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        for w in Workload::ALL.into_iter().filter(|&w| servable(w)) {
            assert_eq!(
                run_service(w, &pool, &g, 0, &token),
                Err(ServiceError::Cancelled),
                "{w}"
            );
        }
    }

    #[test]
    fn unsupported_workloads_are_reported() {
        let g = graph(50);
        let pool = ThreadPool::new(1);
        let live = CancelToken::new();
        for w in Workload::ALL {
            let r = run_service(w, &pool, &g, 0, &live);
            assert_eq!(servable(w), r.is_ok(), "{w}: {r:?}");
            if !servable(w) {
                assert_eq!(r, Err(ServiceError::Unsupported(w)));
            }
        }
    }
}
