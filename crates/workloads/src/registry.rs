//! Workload metadata: Table 4 (categories and computation types) and the
//! Figure 4 use-case analysis.

use graphbig_framework::ComputationType;
use graphbig_json::{json_enum, json_struct_to};

/// High-level workload grouping of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadCategory {
    /// Fundamental traversal operations.
    GraphTraversal,
    /// Computations on dynamic graphs.
    GraphUpdate,
    /// Topological analysis and path/flow analytics.
    GraphAnalytics,
    /// Centrality-style social analysis.
    SocialAnalysis,
}

json_enum!(WorkloadCategory {
    GraphTraversal,
    GraphUpdate,
    GraphAnalytics,
    SocialAnalysis,
});

impl WorkloadCategory {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadCategory::GraphTraversal => "Graph traversal",
            WorkloadCategory::GraphUpdate => "Graph construction/update",
            WorkloadCategory::GraphAnalytics => "Graph analytics",
            WorkloadCategory::SocialAnalysis => "Social analysis",
        }
    }
}

/// Serving-cost class of a workload, used by the query engine's admission
/// control and priority lanes. The classes order by expected work: a point
/// query touches O(degree) edges, a traversal touches each edge at most
/// once, and analytics kernels make several passes over the whole graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostClass {
    /// O(degree) neighborhood lookups (k-hop, degree centrality).
    Point,
    /// Single-pass whole-graph traversals (BFS, DFS).
    Traversal,
    /// Multi-pass iterative kernels (components, cores, paths, …).
    Analytics,
    /// Structural mutations (graph updates, topology morphing): O(degree)
    /// buffer appends plus the amortized compaction they eventually fund.
    Write,
}

json_enum!(CostClass {
    Point,
    Traversal,
    Analytics,
    Write
});

impl CostClass {
    /// All classes in priority-lane order. The read classes stay cheapest
    /// first (lanes 0–2, exactly as before Write existed); the write lane
    /// is appended last so adding it never renumbered a read lane.
    pub const ALL: [CostClass; 4] = [
        CostClass::Point,
        CostClass::Traversal,
        CostClass::Analytics,
        CostClass::Write,
    ];

    /// Lowercase label used in metric names (`engine.latency_us.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            CostClass::Point => "point",
            CostClass::Traversal => "traversal",
            CostClass::Analytics => "analytics",
            CostClass::Write => "write",
        }
    }
}

/// The 13 GraphBIG CPU workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// Breadth-first search.
    Bfs,
    /// Depth-first search.
    Dfs,
    /// Graph construction.
    GCons,
    /// Graph update (vertex deletion).
    GUp,
    /// Topology morphing (DAG moralization).
    TMorph,
    /// Shortest path (Dijkstra).
    SPath,
    /// k-core decomposition (Matula & Beck).
    KCore,
    /// Connected components (BFS-based on CPU).
    CComp,
    /// Graph coloring (Luby–Jones).
    GColor,
    /// Triangle count (Schank).
    Tc,
    /// Gibbs inference on Bayesian networks.
    Gibbs,
    /// Degree centrality.
    DCentr,
    /// Betweenness centrality (Brandes).
    BCentr,
}

/// Static description of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMeta {
    /// The workload.
    pub workload: Workload,
    /// Short name used in figures.
    pub short_name: &'static str,
    /// Table 4 category.
    pub category: WorkloadCategory,
    /// Table 1 computation type.
    pub computation_type: ComputationType,
    /// Number of the 21 analyzed use cases employing this workload
    /// (Figure 4(A); the paper states the endpoints — BFS 10, TC 4 — the
    /// intermediate counts are estimated from the figure).
    pub use_cases: u32,
    /// Whether the paper also ships a GPU version (8 of 13 do).
    pub on_gpu: bool,
    /// Algorithm reference as given in Section 4.2.
    pub algorithm: &'static str,
    /// Serving-cost class for the query engine's lanes and admission.
    pub cost_class: CostClass,
}

json_enum!(Workload {
    Bfs,
    Dfs,
    GCons,
    GUp,
    TMorph,
    SPath,
    KCore,
    CComp,
    GColor,
    Tc,
    Gibbs,
    DCentr,
    BCentr,
});

// Encode-only: the `&'static str` name/algorithm columns come from the
// compiled-in Table 4, so metadata is emitted but never parsed back.
json_struct_to!(WorkloadMeta {
    workload,
    short_name,
    category,
    computation_type,
    use_cases,
    on_gpu,
    algorithm,
    cost_class
});

impl Workload {
    /// All 13 workloads in the paper's figure order.
    pub const ALL: [Workload; 13] = [
        Workload::Bfs,
        Workload::Dfs,
        Workload::GCons,
        Workload::GUp,
        Workload::TMorph,
        Workload::SPath,
        Workload::KCore,
        Workload::CComp,
        Workload::GColor,
        Workload::Tc,
        Workload::Gibbs,
        Workload::DCentr,
        Workload::BCentr,
    ];

    /// Static metadata for this workload.
    pub fn meta(self) -> WorkloadMeta {
        use ComputationType::*;
        use Workload::*;
        use WorkloadCategory::*;
        let (short_name, category, computation_type, use_cases, on_gpu, algorithm) = match self {
            Bfs => ("BFS", GraphTraversal, CompStruct, 10, true, "frontier BFS"),
            Dfs => (
                "DFS",
                GraphTraversal,
                CompStruct,
                8,
                false,
                "iterative stack DFS",
            ),
            GCons => (
                "GCons",
                GraphUpdate,
                CompDyn,
                7,
                false,
                "incremental construction",
            ),
            GUp => ("GUp", GraphUpdate, CompDyn, 6, false, "vertex deletion"),
            TMorph => ("TMorph", GraphUpdate, CompDyn, 5, false, "DAG moralization"),
            SPath => ("SPath", GraphAnalytics, CompStruct, 8, true, "Dijkstra"),
            KCore => (
                "kCore",
                GraphAnalytics,
                CompStruct,
                5,
                true,
                "Matula & Beck",
            ),
            CComp => (
                "CComp",
                GraphAnalytics,
                CompStruct,
                7,
                true,
                "BFS labeling / Soman (GPU)",
            ),
            GColor => ("GColor", GraphAnalytics, CompStruct, 5, true, "Luby-Jones"),
            Tc => ("TC", GraphAnalytics, CompProp, 4, true, "Schank"),
            Gibbs => (
                "Gibbs",
                GraphAnalytics,
                CompProp,
                5,
                false,
                "Gibbs sampling",
            ),
            DCentr => (
                "DCentr",
                SocialAnalysis,
                CompStruct,
                9,
                true,
                "degree centrality",
            ),
            BCentr => ("BCentr", SocialAnalysis, CompStruct, 7, true, "Brandes"),
        };
        WorkloadMeta {
            workload: self,
            short_name,
            category,
            computation_type,
            use_cases,
            on_gpu,
            algorithm,
            cost_class: self.cost_class(),
        }
    }

    /// Serving-cost class: degree centrality is an O(degree)-per-vertex
    /// point lookup, BFS/DFS are single-pass traversals, the dynamic-graph
    /// workloads (vertex deletion, topology morphing) are structural
    /// writes, and everything else iterates to a fixpoint (analytics).
    pub fn cost_class(self) -> CostClass {
        match self {
            Workload::DCentr => CostClass::Point,
            Workload::Bfs | Workload::Dfs => CostClass::Traversal,
            Workload::GUp | Workload::TMorph => CostClass::Write,
            _ => CostClass::Analytics,
        }
    }

    /// Abstract admission-control cost of one run over a graph with `n`
    /// vertices and `m` directed edges, in "touched element" units: point
    /// queries read one adjacency list, traversals touch `n + m` elements
    /// once, analytics kernels make a small constant number of full passes.
    pub fn cost_estimate(self, n: u64, m: u64) -> u64 {
        match self.cost_class() {
            CostClass::Point => n.max(1),
            CostClass::Traversal => n.saturating_add(m).max(1),
            CostClass::Analytics => 4u64.saturating_mul(n.saturating_add(m)).max(1),
            // A mutation batch touches one adjacency list plus its share of
            // the eventual compaction — point-like, not traversal-like.
            CostClass::Write => (n / 2).max(1),
        }
    }

    /// Short figure label.
    pub fn short_name(self) -> &'static str {
        self.meta().short_name
    }

    /// The workloads with GPU implementations (Table 3's "8 GPU workloads").
    pub fn gpu_workloads() -> Vec<Workload> {
        Self::ALL
            .iter()
            .copied()
            .filter(|w| w.meta().on_gpu)
            .collect()
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The six use-case categories of Figure 4(B) with their share of the 21
/// analyzed use cases.
pub const USE_CASE_CATEGORIES: [(&str, f64); 6] = [
    ("Cognitive Computing", 0.24),
    ("Exploration and Science", 0.24),
    ("Data Warehouse Augmentation", 0.14),
    ("Operations Analysis", 0.14),
    ("Security / 360 Degree View", 0.14),
    ("Data Exploration", 0.10),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_cpu_workloads_eight_on_gpu() {
        assert_eq!(Workload::ALL.len(), 13);
        assert_eq!(Workload::gpu_workloads().len(), 8);
    }

    #[test]
    fn figure4_endpoints_match_paper() {
        assert_eq!(Workload::Bfs.meta().use_cases, 10, "BFS is the most used");
        assert_eq!(Workload::Tc.meta().use_cases, 4, "TC is the least used");
        for w in Workload::ALL {
            let u = w.meta().use_cases;
            assert!((4..=10).contains(&u), "{w}: {u}");
        }
    }

    #[test]
    fn all_computation_types_are_covered() {
        use graphbig_framework::ComputationType;
        for ct in ComputationType::ALL {
            assert!(
                Workload::ALL
                    .iter()
                    .any(|w| w.meta().computation_type == ct),
                "no workload covers {ct}"
            );
        }
    }

    #[test]
    fn all_categories_are_covered() {
        for cat in [
            WorkloadCategory::GraphTraversal,
            WorkloadCategory::GraphUpdate,
            WorkloadCategory::GraphAnalytics,
            WorkloadCategory::SocialAnalysis,
        ] {
            assert!(Workload::ALL.iter().any(|w| w.meta().category == cat));
        }
    }

    #[test]
    fn use_case_category_shares_sum_to_one() {
        let sum: f64 = USE_CASE_CATEGORIES.iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_workloads_are_compdyn() {
        use graphbig_framework::ComputationType::CompDyn;
        for w in [Workload::GCons, Workload::GUp, Workload::TMorph] {
            assert_eq!(w.meta().computation_type, CompDyn);
        }
    }

    #[test]
    fn cost_classes_order_by_estimate() {
        let (n, m) = (1000u64, 8000u64);
        let point = Workload::DCentr.cost_estimate(n, m);
        let traversal = Workload::Bfs.cost_estimate(n, m);
        let analytics = Workload::CComp.cost_estimate(n, m);
        let write = Workload::GUp.cost_estimate(n, m);
        assert!(point < traversal && traversal < analytics);
        assert!(write <= point, "a buffered mutation is at most point-cheap");
        assert_eq!(point, n);
        assert_eq!(traversal, n + m);
        assert_eq!(analytics, 4 * (n + m));
        assert_eq!(write, n / 2);
        // Estimates never degenerate to 0 (admission math divides by them).
        for w in Workload::ALL {
            assert!(w.cost_estimate(0, 0) >= 1);
        }
    }

    #[test]
    fn every_workload_has_a_cost_class() {
        for class in CostClass::ALL {
            assert!(Workload::ALL.iter().any(|w| w.cost_class() == class));
        }
        assert_eq!(Workload::Bfs.meta().cost_class, CostClass::Traversal);
        assert_eq!(Workload::DCentr.meta().cost_class, CostClass::Point);
        assert_eq!(Workload::KCore.meta().cost_class, CostClass::Analytics);
        assert_eq!(Workload::GUp.meta().cost_class, CostClass::Write);
        assert_eq!(Workload::TMorph.meta().cost_class, CostClass::Write);
        assert_eq!(CostClass::Point.name(), "point");
        assert_eq!(CostClass::Traversal.name(), "traversal");
        assert_eq!(CostClass::Analytics.name(), "analytics");
        assert_eq!(CostClass::Write.name(), "write");
        // Appending Write must never renumber a read lane — the engine's
        // lane indices, metric arrays, and recorder lane bytes rely on it.
        assert_eq!(
            &CostClass::ALL[..3],
            &[CostClass::Point, CostClass::Traversal, CostClass::Analytics]
        );
    }

    #[test]
    fn property_workloads_are_compprop() {
        use graphbig_framework::ComputationType::CompProp;
        for w in [Workload::Tc, Workload::Gibbs] {
            assert_eq!(w.meta().computation_type, CompProp);
        }
    }
}
