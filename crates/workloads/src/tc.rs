//! Triangle counting "based on Schank's algorithm" (Section 4.2):
//! sorted-adjacency intersection over the undirected view.
//!
//! The suite's CompProp outlier: after collecting neighbor lists through the
//! framework, the hot loop is sorted-list *intersection* — centralized,
//! regular memory access but branch outcomes that depend on data values,
//! which is exactly why TC has the paper's worst branch miss rate (10.7%,
//! Figure 6) while enjoying low MPKI and low DTLB penalty.

use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{addr_of, NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a triangle-count run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcResult {
    /// Distinct triangles in the undirected view.
    pub triangles: u64,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph) -> TcResult {
    run_t(g, &mut NullTracer)
}

/// Traced Schank triangle counting; per-vertex counts land in the
/// `TRIANGLES` property.
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, t: &mut T) -> TcResult {
    let ids: Vec<VertexId> = g.vertex_ids().to_vec();
    let n = ids.len();
    if n == 0 {
        return TcResult { triangles: 0 };
    }
    let mut sorted_ids = ids.clone();
    sorted_ids.sort_unstable();
    let dense =
        |id: VertexId| -> u32 { sorted_ids.binary_search(&id).expect("live vertex") as u32 };

    // Gather the undirected adjacency through framework traversal, dedup,
    // then orient each edge from its lower-degree endpoint — Schank's
    // *forward* algorithm, which bounds intersection lengths.
    let mut undirected: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &id in &ids {
        let u = dense(id);
        g.visit_neighbors_t(id, t, |e, t| {
            t.alu(1);
            if e.target != id {
                undirected[u as usize].push(dense(e.target));
            }
        });
        g.visit_parents_t(id, t, |p, t| {
            t.alu(1);
            if p != id {
                undirected[u as usize].push(dense(p));
            }
        });
    }
    for list in undirected.iter_mut() {
        list.sort_unstable();
        list.dedup();
        t.alu(list.len() as u32); // sort cost proxy
    }
    let rank = |u: usize| (undirected[u].len(), u);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in 0..n {
        for &v in &undirected[u] {
            t.alu(2);
            if rank(u) < rank(v as usize) {
                adj[u].push(v);
            }
        }
    }

    // Count each triangle once at its forward base edge: for forward (u,v),
    // every x in A+(u) ∩ A+(v) closes a triangle.
    let mut per_vertex = vec![0u64; n];
    let mut total = 0u64;
    for u in 0..n {
        for &v in &adj[u] {
            // merge-intersect the two sorted forward lists
            let (mut i, mut j) = (0usize, 0usize);
            let (a, b) = (&adj[u], &adj[v as usize]);
            while i < a.len() && j < b.len() {
                t.branch(line!() as usize, true); // loop bound: predictable
                t.load(addr_of(&a[i]), 4);
                t.load(addr_of(&b[j]), 4);
                let (x, y) = (a[i], b[j]);
                t.alu(2); // index arithmetic
                t.branch(line!() as usize, x == y); // match check: rarely taken
                t.branch(line!() as usize, x < y); // advance choice: data-dependent!
                if x < y {
                    i += 1;
                } else if y < x {
                    j += 1;
                } else {
                    total += 1;
                    per_vertex[u] += 1;
                    per_vertex[v as usize] += 1;
                    per_vertex[x as usize] += 1;
                    i += 1;
                    j += 1;
                }
                t.alu(1);
            }
            t.branch(line!() as usize, false); // loop exit
        }
    }
    for (u, &c) in per_vertex.iter().enumerate() {
        g.set_vertex_prop_t(sorted_ids[u], keys::TRIANGLES, Property::Int(c as i64), t)
            .expect("vertex exists");
    }
    TcResult { triangles: total }
}

/// Triangles incident to a vertex after a run.
pub fn triangles_of(g: &PropertyGraph, v: VertexId) -> Option<u64> {
    g.get_vertex_prop(v, keys::TRIANGLES)
        .and_then(|p| p.as_int())
        .map(|c| c as u64)
}

/// O(V³) brute-force reference for validation (undirected view).
pub fn brute_force_reference(g: &PropertyGraph) -> u64 {
    let ids: Vec<VertexId> = g.vertex_ids().to_vec();
    let connected = |a: VertexId, b: VertexId| g.has_edge(a, b) || g.has_edge(b, a);
    let mut count = 0u64;
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            if !connected(ids[i], ids[j]) {
                continue;
            }
            for k in (j + 1)..ids.len() {
                if connected(ids[i], ids[k]) && connected(ids[j], ids[k]) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(edges: &[(u64, u64)], n: u64) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex();
        }
        for &(a, b) in edges {
            g.add_edge_undirected(a, b, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn one_triangle() {
        let mut g = undirected(&[(0, 1), (1, 2), (0, 2)], 3);
        let r = run(&mut g);
        assert_eq!(r.triangles, 1);
        for v in 0..3 {
            assert_eq!(triangles_of(&g, v), Some(1));
        }
    }

    #[test]
    fn square_has_no_triangles() {
        let mut g = undirected(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(run(&mut g).triangles, 0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let mut g = undirected(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        let r = run(&mut g);
        assert_eq!(r.triangles, 4);
        // every vertex of K4 touches C(3,2) = 3 triangles
        for v in 0..4 {
            assert_eq!(triangles_of(&g, v), Some(3));
        }
    }

    #[test]
    fn directed_edges_count_as_undirected() {
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 0, 1.0).unwrap(); // directed 3-cycle = undirected triangle
        assert_eq!(run(&mut g).triangles, 1);
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        use graphbig_datagen::rng::Rng;
        let mut rng = Rng::seed_from_u64(99);
        let n = 60u64;
        let mut edges = Vec::new();
        for _ in 0..250 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                edges.push((a, b));
            }
        }
        let mut g = undirected(&edges, n);
        let expect = brute_force_reference(&g);
        assert_eq!(run(&mut g).triangles, expect);
    }

    #[test]
    fn parallel_edges_do_not_inflate_count() {
        let mut g = undirected(&[(0, 1), (0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(run(&mut g).triangles, 1);
    }

    #[test]
    fn empty_graph_has_no_triangles() {
        let mut g = PropertyGraph::new();
        assert_eq!(run(&mut g).triangles, 0);
    }
}
