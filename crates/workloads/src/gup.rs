//! Graph update (GUp) — "deletes a given list of vertices and related edges
//! from an existing graph" (Section 4.2).
//!
//! The destructive CompDyn pattern: deletions hit vertices "in a random
//! manner", touching scattered vertex structures and their neighbors'
//! edge lists — the opposite locality profile of GCons.

use graphbig_framework::trace::{NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of an update run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GUpResult {
    /// Vertices deleted.
    pub deleted_vertices: u64,
    /// Arcs removed as a side effect.
    pub deleted_arcs: u64,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph, victims: &[VertexId]) -> GUpResult {
    run_t(g, victims, &mut NullTracer)
}

/// Traced deletion of `victims` (ids not present are skipped).
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, victims: &[VertexId], t: &mut T) -> GUpResult {
    let mut deleted = 0u64;
    let arcs_before = g.num_arcs() as u64;
    for &v in victims {
        t.alu(1);
        let ok = g.delete_vertex_t(v, t).is_ok();
        t.branch(line!() as usize, ok);
        if ok {
            deleted += 1;
        }
    }
    GUpResult {
        deleted_vertices: deleted,
        deleted_arcs: arcs_before - g.num_arcs() as u64,
    }
}

/// Pick a deterministic pseudo-random sample of `count` victim ids from the
/// graph (the paper's "random manner" deletions, reproducibly).
pub fn pick_victims(g: &PropertyGraph, count: usize, seed: u64) -> Vec<VertexId> {
    let ids = g.vertex_ids();
    if ids.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(count);
    let mut x = seed | 1;
    let mut seen = std::collections::HashSet::new();
    while out.len() < count.min(ids.len()) {
        // xorshift64*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let idx = (x.wrapping_mul(0x2545F4914F6CDD1D) as usize) % ids.len();
        if seen.insert(ids[idx]) {
            out.push(ids[idx]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u64) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex();
        }
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn deletes_vertices_and_incident_arcs() {
        let mut g = ring(10);
        let r = run(&mut g, &[0, 5]);
        assert_eq!(r.deleted_vertices, 2);
        assert_eq!(r.deleted_arcs, 4); // each ring vertex has 1 in + 1 out
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_arcs(), 6);
    }

    #[test]
    fn missing_victims_are_skipped() {
        let mut g = ring(4);
        let r = run(&mut g, &[99, 0, 99]);
        assert_eq!(r.deleted_vertices, 1);
    }

    #[test]
    fn graph_stays_consistent_after_heavy_deletion() {
        let mut g = ring(100);
        let victims: Vec<u64> = (0..100).step_by(2).collect();
        run(&mut g, &victims);
        assert_eq!(g.num_vertices(), 50);
        // remaining arcs reference only live vertices
        for (u, e) in g.arcs() {
            assert!(g.find_vertex(u).is_some());
            assert!(g.find_vertex(e.target).is_some());
        }
    }

    #[test]
    fn pick_victims_is_deterministic_and_unique() {
        let g = ring(50);
        let a = pick_victims(&g, 10, 7);
        let b = pick_victims(&g, 10, 7);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert_ne!(a, pick_victims(&g, 10, 8));
    }

    #[test]
    fn pick_victims_caps_at_graph_size() {
        let g = ring(5);
        assert_eq!(pick_victims(&g, 50, 1).len(), 5);
        assert!(pick_victims(&PropertyGraph::new(), 3, 1).is_empty());
    }
}
