//! # graphbig-workloads
//!
//! The 13 GraphBIG CPU workloads (Table 4), implemented over the
//! vertex-centric framework primitives and generic over the
//! [`Tracer`](graphbig_framework::trace::Tracer) so the same code runs
//! uninstrumented (Criterion benches) or through the CPU machine model
//! (the paper's Figures 5–9).
//!
//! | Category | Workloads | Computation type |
//! |---|---|---|
//! | Graph traversal | [`bfs`], [`dfs`] | CompStruct |
//! | Graph construction/update | [`gcons`], [`gup`], [`tmorph`] | CompDyn |
//! | Graph analytics | [`spath`] (Dijkstra), [`kcore`] (Matula–Beck), [`ccomp`] (BFS-based), [`gcolor`] (Luby–Jones), [`tc`] (Schank), [`gibbs`] | CompStruct / CompProp |
//! | Social analysis | [`dcentr`], [`bcentr`] (Brandes) | CompStruct |
//!
//! Algorithm state lives in vertex *properties* (BFS levels, colors, core
//! numbers, ...) updated through framework primitives — exactly the
//! industrial-framework structure whose cost Figure 1 measures.

#![warn(missing_docs)]

pub mod bcentr;
pub mod bfs;
pub mod ccomp;
pub mod dcentr;
pub mod dfs;
pub mod gcolor;
pub mod gcons;
pub mod gibbs;
pub mod gup;
pub mod harness;
pub mod kcore;
pub mod msbfs;
pub mod parallel;
pub mod registry;
pub mod service;
pub mod spath;
pub mod tc;
pub mod tmorph;

pub use registry::{CostClass, Workload, WorkloadCategory, WorkloadMeta};

/// Common imports for workload users.
pub mod prelude {
    pub use crate::harness::{run_traced, RunOutcome, RunParams};
    pub use crate::registry::{CostClass, Workload, WorkloadCategory, WorkloadMeta};
}
