//! Betweenness centrality "with Brandes' algorithm" (Section 4.2),
//! unweighted: per-source BFS computing shortest-path counts, then reverse
//! dependency accumulation.
//!
//! Exact betweenness runs one accumulation per vertex; like production
//! deployments (and Madduri et al.'s approximate variant the paper cites)
//! the source set is sampled — `sources` caps the number of accumulations.

use std::collections::VecDeque;

use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{addr_of, NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a betweenness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BCentrResult {
    /// Highest accumulated betweenness.
    pub max_centrality: f64,
    /// Vertex achieving it.
    pub max_vertex: VertexId,
    /// Sources actually processed.
    pub sources_used: u64,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph, sources: usize) -> BCentrResult {
    run_t(g, sources, &mut NullTracer)
}

/// Traced Brandes accumulation from the first `sources` vertices in
/// deterministic order (pass `usize::MAX` for exact betweenness). Scores
/// land in the `CENTRALITY` property.
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, sources: usize, t: &mut T) -> BCentrResult {
    let ids: Vec<VertexId> = g.vertex_ids().to_vec();
    let n = ids.len();
    if n == 0 {
        return BCentrResult {
            max_centrality: 0.0,
            max_vertex: 0,
            sources_used: 0,
        };
    }
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    let dense = |id: VertexId| -> usize { sorted.binary_search(&id).expect("live vertex") };

    let mut centrality = vec![0f64; n];
    let mut sigma = vec![0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0f64; n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = VecDeque::new();

    let used = ids.iter().take(sources).count() as u64;
    for &s in ids.iter().take(sources) {
        // reset per-source state (sequential sweeps over the dense arrays)
        for x in sigma.iter_mut() {
            t.store(addr_of(x), 8);
            *x = 0.0;
        }
        for x in dist.iter_mut() {
            t.store(addr_of(x), 8);
            *x = -1;
        }
        for x in delta.iter_mut() {
            t.store(addr_of(x), 8);
            *x = 0.0;
        }
        for p in preds.iter_mut() {
            t.store(addr_of(p), 8);
            p.clear();
        }
        order.clear();
        queue.clear();

        let sd = dense(s);
        sigma[sd] = 1.0;
        dist[sd] = 0;
        queue.push_back(sd as u32);
        while let Some(u) = queue.pop_front() {
            t.load(addr_of(&u), 4);
            t.branch(line!() as usize, true);
            order.push(u);
            let du = dist[u as usize];
            let uid = sorted[u as usize];
            let mut targets: Vec<u32> = Vec::new();
            g.visit_neighbors_t(uid, t, |e, t| {
                t.alu(1);
                targets.push(dense(e.target) as u32);
            });
            for v in targets {
                let vu = v as usize;
                t.branch(line!() as usize, dist[vu] < 0);
                if dist[vu] < 0 {
                    dist[vu] = du + 1;
                    queue.push_back(v);
                    t.store(addr_of(&dist[vu]), 8);
                }
                if dist[vu] == du + 1 {
                    sigma[vu] += sigma[u as usize];
                    preds[vu].push(u);
                    t.store(addr_of(&sigma[vu]), 8);
                }
            }
        }
        // reverse accumulation
        for &w in order.iter().rev() {
            let wu = w as usize;
            for &p in &preds[wu] {
                let pu = p as usize;
                t.load(addr_of(&sigma[pu]), 8);
                t.alu(4);
                delta[pu] += sigma[pu] / sigma[wu] * (1.0 + delta[wu]);
            }
            if wu != sd {
                centrality[wu] += delta[wu];
            }
        }
    }

    let mut best = (0usize, f64::MIN);
    for (u, &c) in centrality.iter().enumerate() {
        g.set_vertex_prop_t(sorted[u], keys::CENTRALITY, Property::Float(c), t)
            .expect("vertex exists");
        if c > best.1 {
            best = (u, c);
        }
    }
    BCentrResult {
        max_centrality: best.1,
        max_vertex: sorted[best.0],
        sources_used: used,
    }
}

/// Betweenness of a vertex after a run.
pub fn centrality_of(g: &PropertyGraph, v: VertexId) -> Option<f64> {
    g.get_vertex_prop(v, keys::CENTRALITY)
        .and_then(|p| p.as_float())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0 - 1 - 2 - 3 (undirected as arc pairs).
    fn path4() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for _ in 0..4 {
            g.add_vertex();
        }
        for i in 0..3u64 {
            g.add_edge_undirected(i, i + 1, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn path_centralities_match_theory() {
        // Exact betweenness on a path of 4: inner vertices lie on paths
        // (0,2),(0,3),(1,3) -> vertex1: pairs (0,2),(0,3) both directions = 4;
        // standard directed-count betweenness of vertex 1 is 4.
        let mut g = path4();
        run(&mut g, usize::MAX);
        assert_eq!(centrality_of(&g, 0), Some(0.0));
        assert_eq!(centrality_of(&g, 1), Some(4.0));
        assert_eq!(centrality_of(&g, 2), Some(4.0));
        assert_eq!(centrality_of(&g, 3), Some(0.0));
    }

    #[test]
    fn star_center_dominates() {
        let mut g = PropertyGraph::new();
        let hub = g.add_vertex();
        for _ in 0..5 {
            let leaf = g.add_vertex();
            g.add_edge_undirected(hub, leaf, 1.0).unwrap();
        }
        let r = run(&mut g, usize::MAX);
        assert_eq!(r.max_vertex, hub);
        // hub lies on all 5*4 = 20 ordered leaf pairs
        assert_eq!(r.max_centrality, 20.0);
    }

    #[test]
    fn split_shortest_paths_share_credit() {
        // 0 -> {1, 2} -> 3: two equal shortest paths, each middle vertex
        // gets 0.5 per direction
        let mut g = PropertyGraph::new();
        for _ in 0..4 {
            g.add_vertex();
        }
        for &(a, b) in &[(0u64, 1u64), (0, 2), (1, 3), (2, 3)] {
            g.add_edge_undirected(a, b, 1.0).unwrap();
        }
        run(&mut g, usize::MAX);
        assert_eq!(centrality_of(&g, 1), Some(1.0)); // 0.5 each direction
        assert_eq!(centrality_of(&g, 2), Some(1.0));
    }

    #[test]
    fn sampled_sources_bound_work() {
        let mut g = path4();
        let r = run(&mut g, 2);
        assert_eq!(r.sources_used, 2);
    }

    #[test]
    fn empty_graph() {
        let mut g = PropertyGraph::new();
        let r = run(&mut g, 10);
        assert_eq!(r.sources_used, 0);
    }
}
