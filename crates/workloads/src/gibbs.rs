//! Gibbs sampling for approximate inference in Bayesian networks
//! (Section 4.2) — the suite's pure CompProp workload.
//!
//! Each sweep resamples every variable from its full conditional given the
//! Markov blanket: `P(x_v | blanket) ∝ CPT_v(x_v | pa(v)) × Π_{c ∈ ch(v)}
//! CPT_c(s_c | pa(c))`. The hot loop reads large `CPT` vector properties
//! and multiplies probabilities — "heavy numeric operations on properties"
//! with accesses "centralized within the vertices", which is why Gibbs
//! posts the suite's lowest MPKI and DTLB penalty (Figures 6–7).

use graphbig_datagen::bayes::{cpt_block_offset, BayesNet};
use graphbig_datagen::rng::Rng;
use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{addr_of, NullTracer, Tracer};
use graphbig_framework::VertexId;

/// Outcome of a Gibbs run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GibbsResult {
    /// Full sweeps performed.
    pub sweeps: u64,
    /// Total variable resamplings.
    pub samples: u64,
    /// Fraction of resamplings that changed the variable's state (mixing
    /// indicator).
    pub flip_rate: f64,
}

/// Untraced convenience wrapper.
pub fn run(net: &mut BayesNet, sweeps: usize, seed: u64) -> GibbsResult {
    run_t(net, sweeps, seed, &mut NullTracer)
}

/// Traced Gibbs sampling: `sweeps` full passes over the variables; current
/// states live in the `SAMPLE` property.
pub fn run_t<T: Tracer>(net: &mut BayesNet, sweeps: usize, seed: u64, t: &mut T) -> GibbsResult {
    let mut rng = Rng::seed_from_u64(seed);
    let ids: Vec<VertexId> = net.graph.vertex_ids().to_vec();
    let mut samples = 0u64;
    let mut flips = 0u64;
    let mut cond: Vec<f64> = Vec::new();

    for _ in 0..sweeps {
        for &v in &ids {
            let arity = net.arities[v as usize];
            cond.clear();
            cond.resize(arity, 1.0);

            // Own CPT: block selected by the parents' current states.
            {
                let parents: Vec<VertexId> = net.graph.parents(v).collect();
                let pstates: Vec<usize> = parents.iter().map(|&p| state_of(net, p, t)).collect();
                let parities: Vec<usize> =
                    parents.iter().map(|&p| net.arities[p as usize]).collect();
                let off = cpt_block_offset(&pstates, &parities, arity);
                let cpt = net
                    .graph
                    .get_vertex_prop_t(v, keys::CPT, t)
                    .and_then(|p| p.as_vector())
                    .expect("CPT present");
                for (x, c) in cond.iter_mut().enumerate() {
                    t.load(addr_of(&cpt[off + x]), 8);
                    t.alu(5); // offset arithmetic + fp multiply
                    *c *= cpt[off + x];
                }
            }

            // Children's CPTs: likelihood of each child's state under each
            // candidate value of v.
            let children: Vec<VertexId> = net.graph.neighbors(v).map(|e| e.target).collect();
            for c in children {
                let c_arity = net.arities[c as usize];
                let c_state = state_of(net, c, t);
                let c_parents: Vec<VertexId> = net.graph.parents(c).collect();
                let c_parities: Vec<usize> =
                    c_parents.iter().map(|&p| net.arities[p as usize]).collect();
                let mut c_pstates: Vec<usize> =
                    c_parents.iter().map(|&p| state_of(net, p, t)).collect();
                let my_pos = c_parents
                    .iter()
                    .position(|&p| p == v)
                    .expect("v is a parent of its child");
                let cpt = net
                    .graph
                    .get_vertex_prop_t(c, keys::CPT, t)
                    .and_then(|p| p.as_vector())
                    .expect("CPT present");
                for (x, w) in cond.iter_mut().enumerate() {
                    c_pstates[my_pos] = x;
                    let off = cpt_block_offset(&c_pstates, &c_parities, c_arity);
                    t.load(addr_of(&cpt[off + c_state]), 8);
                    t.alu(8); // mixed-radix offset computation + fp multiply
                    *w *= cpt[off + c_state];
                }
            }

            // Normalize and sample.
            let total: f64 = cond.iter().sum();
            t.alu(3 * arity as u32); // normalization + inverse-cdf setup
            let u: f64 = rng.gen_range(0.0..1.0) * total;
            let mut acc = 0.0;
            let mut new_state = arity - 1;
            for (x, &c) in cond.iter().enumerate() {
                acc += c;
                t.branch(line!() as usize, acc >= u);
                if acc >= u {
                    new_state = x;
                    break;
                }
            }
            let old = state_of(net, v, t);
            if new_state != old {
                flips += 1;
            }
            net.graph
                .set_vertex_prop_t(v, keys::SAMPLE, Property::Int(new_state as i64), t)
                .expect("vertex exists");
            samples += 1;
        }
    }
    GibbsResult {
        sweeps: sweeps as u64,
        samples,
        flip_rate: if samples == 0 {
            0.0
        } else {
            flips as f64 / samples as f64
        },
    }
}

fn state_of<T: Tracer>(net: &BayesNet, v: VertexId, t: &mut T) -> usize {
    net.graph
        .get_vertex_prop_t(v, keys::SAMPLE, t)
        .and_then(|p| p.as_int())
        .unwrap_or(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::bayes::{generate, BayesConfig};

    fn small_net() -> BayesNet {
        generate(&BayesConfig::with_vertices(120))
    }

    #[test]
    fn states_stay_within_arity() {
        let mut net = small_net();
        run(&mut net, 3, 42);
        for &v in net.graph.vertex_ids().to_vec().iter() {
            let s = net
                .graph
                .get_vertex_prop(v, keys::SAMPLE)
                .and_then(|p| p.as_int())
                .unwrap() as usize;
            assert!(s < net.arities[v as usize], "vertex {v}: state {s}");
        }
    }

    #[test]
    fn sampler_actually_mixes() {
        let mut net = small_net();
        let r = run(&mut net, 5, 42);
        assert_eq!(r.sweeps, 5);
        assert_eq!(r.samples, 5 * 120);
        assert!(r.flip_rate > 0.1, "flip rate {}", r.flip_rate);
        assert!(r.flip_rate < 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run_states = |seed: u64| {
            let mut net = small_net();
            run(&mut net, 4, seed);
            net.graph
                .vertex_ids()
                .iter()
                .map(|&v| {
                    net.graph
                        .get_vertex_prop(v, keys::SAMPLE)
                        .and_then(|p| p.as_int())
                        .unwrap()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run_states(7), run_states(7));
        assert_ne!(run_states(7), run_states(8));
    }

    #[test]
    fn marginal_tracks_cpt_for_single_binary_variable() {
        // A 1-vertex net: Gibbs draws directly from the CPT, so the
        // empirical marginal must approach it.
        use graphbig_framework::PropertyGraph;
        let mut g = PropertyGraph::new();
        g.add_vertex();
        g.set_vertex_prop(0, keys::CPT, Property::Vector(vec![0.8, 0.2]))
            .unwrap();
        g.set_vertex_prop(0, keys::SAMPLE, Property::Int(0))
            .unwrap();
        let mut net = BayesNet {
            graph: g,
            arities: vec![2],
            total_parameters: 2,
        };
        let mut ones = 0;
        let sweeps = 2000;
        let mut rng_seed = 0;
        for s in 0..sweeps {
            rng_seed += 1;
            run(&mut net, 1, rng_seed);
            let st = net
                .graph
                .get_vertex_prop(0, keys::SAMPLE)
                .and_then(|p| p.as_int())
                .unwrap();
            ones += st;
            let _ = s;
        }
        let frac = ones as f64 / sweeps as f64;
        assert!((frac - 0.2).abs() < 0.05, "empirical P(1) = {frac}");
    }

    #[test]
    fn zero_sweeps_is_a_noop() {
        let mut net = small_net();
        let r = run(&mut net, 0, 1);
        assert_eq!(r.samples, 0);
        assert_eq!(r.flip_rate, 0.0);
    }
}
