//! Graph construction (GCons) — "constructs a directed graph with a given
//! number of vertices and edges" (Section 4.2).
//!
//! The CompDyn pattern with *good* locality: each inserted vertex/edge is
//! reused immediately after allocation, which is why GCons shows the lowest
//! L3 MPKI of the dynamic workloads (Figure 7 discussion).

use graphbig_framework::trace::{NullTracer, Tracer};
use graphbig_framework::PropertyGraph;

/// Outcome of a construction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GConsResult {
    /// Vertices created.
    pub vertices: u64,
    /// Arcs created.
    pub arcs: u64,
}

/// Untraced convenience wrapper.
pub fn run(num_vertices: usize, edges: &[(u64, u64, f32)]) -> (PropertyGraph, GConsResult) {
    run_t(num_vertices, edges, &mut NullTracer)
}

/// Traced construction of a directed graph from an edge list over
/// `num_vertices` auto-id vertices. Every insertion goes through the
/// framework's add-vertex/add-edge primitives.
pub fn run_t<T: Tracer>(
    num_vertices: usize,
    edges: &[(u64, u64, f32)],
    t: &mut T,
) -> (PropertyGraph, GConsResult) {
    let mut g = PropertyGraph::with_capacity(num_vertices);
    for _ in 0..num_vertices {
        g.add_vertex_t(t);
    }
    let mut arcs = 0u64;
    for &(u, v, w) in edges {
        t.alu(1);
        if g.add_edge_t(u, v, w, t).is_ok() {
            arcs += 1;
        }
        t.branch(line!() as usize, true);
    }
    (
        g,
        GConsResult {
            vertices: num_vertices as u64,
            arcs,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_framework::trace::CountingTracer;

    #[test]
    fn builds_requested_graph() {
        let edges = [(0u64, 1u64, 1.0f32), (1, 2, 2.0), (2, 0, 3.0)];
        let (g, r) = run(3, &edges);
        assert_eq!(r.vertices, 3);
        assert_eq!(r.arcs, 3);
        assert_eq!(g.num_vertices(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn out_of_range_edges_are_skipped() {
        let edges = [(0u64, 9u64, 1.0f32), (0, 1, 1.0)];
        let (g, r) = run(2, &edges);
        assert_eq!(r.arcs, 1);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn construction_is_almost_entirely_framework_time() {
        let edges: Vec<(u64, u64, f32)> =
            (0..500).map(|i| (i % 50, (i * 7 + 1) % 50, 1.0)).collect();
        let mut t = CountingTracer::new();
        run_t(50, &edges, &mut t);
        assert!(
            t.framework_fraction() > 0.85,
            "GCons fraction {}",
            t.framework_fraction()
        );
    }

    #[test]
    fn empty_inputs_build_empty_graph() {
        let (g, r) = run(0, &[]);
        assert!(g.is_empty());
        assert_eq!(r.arcs, 0);
    }
}
