//! Uniform run wiring: one entry point that executes any [`Workload`] on a
//! dataset graph under any tracer — the glue the figure binaries use.
//!
//! Per-workload input conventions (matching the paper's methodology):
//!
//! * traversal/analytics workloads run on the dataset graph as-is;
//! * `GCons` rebuilds the dataset graph through framework insertions;
//! * `GUp` deletes a deterministic random sample of vertices;
//! * `TMorph` first orients the dataset's arcs into a DAG (low-to-high
//!   position), then moralizes it;
//! * `Gibbs` always runs on the MUNIN-shaped Bayesian network (Section 5.1:
//!   "because of the special computation requirement of Gibbs Inference
//!   workload, the bayesian network MUNIN is used").

use graphbig_datagen::bayes::{self, BayesConfig};
use graphbig_framework::property::keys;
use graphbig_framework::trace::Tracer;
use graphbig_framework::{PropertyGraph, VertexId};

use crate::registry::Workload;
use crate::{bcentr, bfs, ccomp, dcentr, dfs, gcolor, gcons, gibbs, gup, kcore, spath, tc, tmorph};

/// Tunable parameters of a harness run.
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Preferred traversal source (falls back to the first vertex).
    pub source: Option<VertexId>,
    /// Brandes source-sample size.
    pub bcentr_sources: usize,
    /// Gibbs sweeps over the network.
    pub gibbs_sweeps: usize,
    /// Scale of the Gibbs Bayesian network (1.0 = MUNIN's 1041 vertices).
    pub gibbs_scale: f64,
    /// Fraction of vertices GUp deletes.
    pub gup_fraction: f64,
    /// Seed for stochastic pieces (victim sampling, Gibbs).
    pub seed: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            source: None,
            bcentr_sources: 8,
            gibbs_sweeps: 3,
            gibbs_scale: 1.0,
            gup_fraction: 0.05,
            seed: 0x6b1f,
        }
    }
}

/// Summary of one workload execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Which workload ran.
    pub workload: Workload,
    /// Headline result (visited vertices, components, triangles, ...).
    pub primary_metric: f64,
    /// Human-readable result description.
    pub description: String,
}

/// Execute `w` on `g` under tracer `t`.
///
/// `g` is consumed conceptually: workloads mutate properties and `GUp`
/// mutates structure — pass a freshly generated graph per run (as the
/// paper's per-experiment runs do).
pub fn run_traced<T: Tracer>(
    w: Workload,
    g: &mut PropertyGraph,
    params: &RunParams,
    t: &mut T,
) -> RunOutcome {
    let source = params
        .source
        .filter(|&s| g.find_vertex(s).is_some())
        .or_else(|| g.vertex_ids().first().copied())
        .unwrap_or(0);
    // Two nested phase spans: a uniform "harness.kernel" for cross-workload
    // aggregation and the workload's short name for trace readability.
    let _kernel = graphbig_telemetry::span!("harness.kernel", vertices = g.num_vertices());
    let _named = graphbig_telemetry::span::span(w.short_name());
    match w {
        Workload::Bfs => {
            g.clear_prop(keys::STATUS);
            let r = bfs::run_t(g, source, t);
            outcome(
                w,
                r.visited as f64,
                format!("visited {} (depth {})", r.visited, r.max_level),
            )
        }
        Workload::Dfs => {
            g.clear_prop(keys::STATUS);
            let r = dfs::run_t(g, source, t);
            outcome(
                w,
                r.visited as f64,
                format!("visited {} (max depth {})", r.visited, r.max_depth),
            )
        }
        Workload::GCons => {
            let prep = graphbig_telemetry::span::span("harness.prep");
            let n = g.num_vertices();
            let dense: std::collections::HashMap<VertexId, u64> = g
                .vertex_ids()
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, i as u64))
                .collect();
            let edges: Vec<(u64, u64, f32)> = g
                .arcs()
                .map(|(u, e)| (dense[&u], dense[&e.target], e.weight))
                .collect();
            drop(prep);
            let (_, r) = gcons::run_t(n, &edges, t);
            outcome(
                w,
                r.arcs as f64,
                format!("built {} vertices / {} arcs", r.vertices, r.arcs),
            )
        }
        Workload::GUp => {
            let count = ((g.num_vertices() as f64 * params.gup_fraction) as usize).max(1);
            let victims = gup::pick_victims(g, count, params.seed);
            let r = gup::run_t(g, &victims, t);
            outcome(
                w,
                r.deleted_vertices as f64,
                format!(
                    "deleted {} vertices / {} arcs",
                    r.deleted_vertices, r.deleted_arcs
                ),
            )
        }
        Workload::TMorph => {
            let dag = {
                let _prep = graphbig_telemetry::span::span("harness.prep");
                orient_to_dag(g)
            };
            let (_, r) = tmorph::run_t(&dag, t);
            outcome(
                w,
                r.moral_edges as f64,
                format!(
                    "moral graph: {} edges ({} marriages)",
                    r.moral_edges, r.marriages
                ),
            )
        }
        Workload::SPath => {
            g.clear_prop(keys::DISTANCE);
            let r = spath::run_t(g, source, t);
            outcome(
                w,
                r.reached as f64,
                format!("reached {} (max dist {:.2})", r.reached, r.max_distance),
            )
        }
        Workload::KCore => {
            g.clear_prop(keys::CORE);
            let r = kcore::run_t(g, t);
            outcome(
                w,
                r.max_core as f64,
                format!("degeneracy {} (core size {})", r.max_core, r.max_core_size),
            )
        }
        Workload::CComp => {
            g.clear_prop(keys::COMPONENT);
            let r = ccomp::run_t(g, t);
            outcome(
                w,
                r.components as f64,
                format!("{} components (largest {})", r.components, r.largest),
            )
        }
        Workload::GColor => {
            g.clear_prop(keys::COLOR);
            let r = gcolor::run_t(g, t);
            outcome(
                w,
                r.colors as f64,
                format!("{} colors in {} rounds", r.colors, r.rounds),
            )
        }
        Workload::Tc => {
            g.clear_prop(keys::TRIANGLES);
            let r = tc::run_t(g, t);
            outcome(w, r.triangles as f64, format!("{} triangles", r.triangles))
        }
        Workload::Gibbs => {
            let cfg = if (params.gibbs_scale - 1.0).abs() < 1e-9 {
                BayesConfig::munin_like()
            } else {
                BayesConfig::with_vertices((1041.0 * params.gibbs_scale) as usize)
            };
            let mut net = {
                let _prep = graphbig_telemetry::span::span("harness.prep");
                bayes::generate(&cfg)
            };
            let r = gibbs::run_t(&mut net, params.gibbs_sweeps, params.seed, t);
            outcome(
                w,
                r.samples as f64,
                format!("{} samples (flip rate {:.2})", r.samples, r.flip_rate),
            )
        }
        Workload::DCentr => {
            g.clear_prop(keys::CENTRALITY);
            let r = dcentr::run_t(g, t);
            outcome(
                w,
                r.max_centrality,
                format!("max centrality {:.4} at {}", r.max_centrality, r.max_vertex),
            )
        }
        Workload::BCentr => {
            g.clear_prop(keys::CENTRALITY);
            let r = bcentr::run_t(g, params.bcentr_sources, t);
            outcome(
                w,
                r.max_centrality,
                format!(
                    "max betweenness {:.1} at {} ({} sources)",
                    r.max_centrality, r.max_vertex, r.sources_used
                ),
            )
        }
    }
}

fn outcome(workload: Workload, primary_metric: f64, description: String) -> RunOutcome {
    RunOutcome {
        workload,
        primary_metric,
        description,
    }
}

/// Orient a graph's arcs into a DAG by keeping only arcs that go forward in
/// the deterministic vertex order (deduplicated).
pub fn orient_to_dag(g: &PropertyGraph) -> PropertyGraph {
    let pos: std::collections::HashMap<VertexId, usize> = g
        .vertex_ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let mut dag = PropertyGraph::with_capacity(g.num_vertices());
    for &id in g.vertex_ids() {
        dag.add_vertex_with_id(id).expect("unique ids");
    }
    for (u, e) in g.arcs() {
        if pos[&u] < pos[&e.target] && !dag.has_edge(u, e.target) {
            dag.add_edge(u, e.target, e.weight)
                .expect("endpoints exist");
        }
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::Dataset;
    use graphbig_framework::trace::{CountingTracer, NullTracer};

    #[test]
    fn every_workload_runs_on_a_small_ldbc_graph() {
        let params = RunParams {
            gibbs_scale: 0.1,
            ..Default::default()
        };
        for w in Workload::ALL {
            let mut g = Dataset::Ldbc.generate_with_vertices(300);
            let mut t = CountingTracer::new();
            let out = run_traced(w, &mut g, &params, &mut t);
            assert_eq!(out.workload, w);
            assert!(t.instructions() > 0, "{w} traced nothing");
            assert!(!out.description.is_empty());
        }
    }

    #[test]
    fn orient_to_dag_is_acyclic_and_lossy_only_backward() {
        let g = Dataset::Ldbc.generate_with_vertices(200);
        let dag = orient_to_dag(&g);
        assert!(graphbig_datagen::dag::is_acyclic(&dag));
        assert!(dag.num_arcs() <= g.num_arcs());
        assert!(dag.num_arcs() > 0);
    }

    #[test]
    fn traversal_source_falls_back_to_first_vertex() {
        let mut g = Dataset::CaRoad.generate_with_vertices(100);
        let params = RunParams {
            source: Some(999_999),
            ..Default::default()
        };
        let out = run_traced(Workload::Bfs, &mut g, &params, &mut NullTracer);
        assert!(out.primary_metric >= 1.0, "fell back and visited something");
    }

    #[test]
    fn gup_respects_fraction() {
        let mut g = Dataset::Ldbc.generate_with_vertices(200);
        let params = RunParams {
            gup_fraction: 0.10,
            ..Default::default()
        };
        let out = run_traced(Workload::GUp, &mut g, &params, &mut NullTracer);
        assert_eq!(out.primary_metric, 20.0);
        assert_eq!(g.num_vertices(), 180);
    }

    #[test]
    fn framework_time_dominates_traversal() {
        let mut g = Dataset::Ldbc.generate_with_vertices(400);
        let mut t = CountingTracer::new();
        run_traced(Workload::Bfs, &mut g, &RunParams::default(), &mut t);
        assert!(t.framework_fraction() > 0.6, "{}", t.framework_fraction());
    }
}
