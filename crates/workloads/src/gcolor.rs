//! Graph coloring "following Luby-Jones' proposal" (Section 4.2) — the
//! Jones–Plassmann/Luby independent-set scheme: in each round, every
//! uncolored vertex whose random priority beats all uncolored neighbors
//! picks the smallest color unused in its neighborhood.
//!
//! The CPU version executes the rounds sequentially but keeps the parallel
//! algorithm's structure (and its determinism: priorities are a fixed hash
//! of the vertex id), so CPU and GPU produce identical colorings.

use graphbig_framework::index::hash_id;
use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a coloring run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GColorResult {
    /// Colors used (chromatic upper bound).
    pub colors: u32,
    /// Rounds until fixpoint.
    pub rounds: u32,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph) -> GColorResult {
    run_t(g, &mut NullTracer)
}

/// Traced Luby–Jones coloring over the undirected view (neighbors =
/// out-neighbors ∪ parents); colors land in the `COLOR` property.
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, t: &mut T) -> GColorResult {
    let mut uncolored: Vec<VertexId> = g.vertex_ids().to_vec();
    let mut rounds = 0u32;
    let mut max_color = -1i64;
    let mut nbrs: Vec<VertexId> = Vec::new();

    while !uncolored.is_empty() {
        rounds += 1;
        let mut winners: Vec<VertexId> = Vec::new();
        for &v in &uncolored {
            t.alu(1);
            let pv = hash_id(v);
            nbrs.clear();
            g.visit_neighbors_t(v, t, |e, _| nbrs.push(e.target));
            g.visit_parents_t(v, t, |p, _| nbrs.push(p));
            let mut is_max = true;
            for &u in &nbrs {
                t.alu(1);
                if u == v {
                    continue;
                }
                let colored = g.get_vertex_prop_t(u, keys::COLOR, t).is_some();
                t.branch(line!() as usize, colored);
                if !colored {
                    // ties broken by id so the set is truly independent
                    let pu = hash_id(u);
                    let loses = pu > pv || (pu == pv && u > v);
                    t.branch(line!() as usize, loses);
                    if loses {
                        is_max = false;
                        break;
                    }
                }
            }
            t.branch(line!() as usize, is_max);
            if is_max {
                winners.push(v);
            }
        }
        debug_assert!(!winners.is_empty(), "Luby-Jones always makes progress");
        for &v in &winners {
            // smallest color not used by any (colored) neighbor
            nbrs.clear();
            g.visit_neighbors_t(v, t, |e, _| nbrs.push(e.target));
            g.visit_parents_t(v, t, |p, _| nbrs.push(p));
            let mut used: Vec<i64> = nbrs
                .iter()
                .filter_map(|&u| {
                    g.get_vertex_prop_t(u, keys::COLOR, t)
                        .and_then(|p| p.as_int())
                })
                .collect();
            used.sort_unstable();
            used.dedup();
            let mut color = 0i64;
            for &c in &used {
                t.alu(1);
                if c == color {
                    color += 1;
                } else if c > color {
                    break;
                }
            }
            g.set_vertex_prop_t(v, keys::COLOR, Property::Int(color), t)
                .expect("vertex exists");
            max_color = max_color.max(color);
        }
        uncolored.retain(|&v| g.get_vertex_prop(v, keys::COLOR).is_none());
    }
    GColorResult {
        colors: (max_color + 1).max(0) as u32,
        rounds,
    }
}

/// Color of a vertex after a run.
pub fn color_of(g: &PropertyGraph, v: VertexId) -> Option<i64> {
    g.get_vertex_prop(v, keys::COLOR).and_then(|p| p.as_int())
}

/// Check that no edge joins same-colored endpoints (validation aid).
pub fn is_valid_coloring(g: &PropertyGraph) -> bool {
    g.arcs()
        .all(|(u, e)| u == e.target || color_of(g, u) != color_of(g, e.target))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(edges: &[(u64, u64)], n: u64) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex();
        }
        for &(a, b) in edges {
            g.add_edge_undirected(a, b, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn triangle_needs_three_colors() {
        let mut g = undirected(&[(0, 1), (1, 2), (0, 2)], 3);
        let r = run(&mut g);
        assert_eq!(r.colors, 3);
        assert!(is_valid_coloring(&g));
    }

    #[test]
    fn path_needs_two_colors() {
        let mut g = undirected(&[(0, 1), (1, 2), (2, 3)], 4);
        let r = run(&mut g);
        assert!(r.colors <= 3, "greedy bound on a path: {}", r.colors);
        assert!(r.colors >= 2);
        assert!(is_valid_coloring(&g));
    }

    #[test]
    fn coloring_is_valid_on_random_graph() {
        use graphbig_datagen::rng::Rng;
        let mut rng = Rng::seed_from_u64(3);
        let n = 300u64;
        let mut edges = Vec::new();
        for _ in 0..900 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                edges.push((a, b));
            }
        }
        let mut g = undirected(&edges, n);
        let r = run(&mut g);
        assert!(is_valid_coloring(&g));
        // greedy-with-max-degree bound
        let max_deg = g.vertices().map(|v| v.out_degree()).max().unwrap();
        assert!(r.colors as usize <= max_deg + 1);
    }

    #[test]
    fn isolated_vertices_all_take_color_zero() {
        let mut g = undirected(&[], 5);
        let r = run(&mut g);
        assert_eq!(r.colors, 1);
        assert_eq!(r.rounds, 1);
        for v in 0..5 {
            assert_eq!(color_of(&g, v), Some(0));
        }
    }

    #[test]
    fn deterministic_colors() {
        let build = || undirected(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], 4);
        let mut g1 = build();
        let mut g2 = build();
        run(&mut g1);
        run(&mut g2);
        for v in 0..4 {
            assert_eq!(color_of(&g1, v), color_of(&g2, v));
        }
    }

    #[test]
    fn directed_edges_also_constrain() {
        let mut g = PropertyGraph::new();
        for _ in 0..2 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap(); // one direction only
        run(&mut g);
        assert_ne!(color_of(&g, 0), color_of(&g, 1));
    }

    #[test]
    fn empty_graph_uses_no_colors() {
        let mut g = PropertyGraph::new();
        let r = run(&mut g);
        assert_eq!(r.colors, 0);
        assert_eq!(r.rounds, 0);
    }
}
