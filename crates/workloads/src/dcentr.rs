//! Degree centrality (Section 4.2's social-analysis representative,
//! following Kang et al.'s centrality formulation).
//!
//! Deceptively simple — one pass reading every vertex structure — which
//! makes it the paper's most memory-hostile workload: nothing is reused, so
//! DCentr posts the highest L3 MPKI of the whole suite (145.9, Figure 7)
//! and, on GPUs, the highest divergence (Figure 10).

use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a degree-centrality run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DCentrResult {
    /// Highest normalized centrality.
    pub max_centrality: f64,
    /// Vertex achieving it.
    pub max_vertex: VertexId,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph) -> DCentrResult {
    run_t(g, &mut NullTracer)
}

/// Traced degree centrality: `(in + out) / (n - 1)` per vertex, stored in
/// the `CENTRALITY` property.
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, t: &mut T) -> DCentrResult {
    let ids: Vec<VertexId> = g.vertex_ids().to_vec();
    let n = ids.len();
    let denom = (n.saturating_sub(1)).max(1) as f64;
    let mut best = DCentrResult {
        max_centrality: -1.0,
        max_vertex: 0,
    };
    for &id in &ids {
        // Read the vertex structure through the framework; degree = header
        // reads only, no payload reuse.
        let (out_d, in_d) = match g.find_vertex_t(id, t) {
            Some(v) => (v.out_degree(), v.in_degree()),
            None => continue,
        };
        t.alu(3);
        let c = (out_d + in_d) as f64 / denom;
        g.set_vertex_prop_t(id, keys::CENTRALITY, Property::Float(c), t)
            .expect("vertex exists");
        t.branch(line!() as usize, c > best.max_centrality);
        if c > best.max_centrality {
            best = DCentrResult {
                max_centrality: c,
                max_vertex: id,
            };
        }
    }
    best
}

/// Centrality of a vertex after a run.
pub fn centrality_of(g: &PropertyGraph, v: VertexId) -> Option<f64> {
    g.get_vertex_prop(v, keys::CENTRALITY)
        .and_then(|p| p.as_float())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_of_star_has_max_centrality() {
        let mut g = PropertyGraph::new();
        let hub = g.add_vertex();
        for _ in 0..9 {
            let leaf = g.add_vertex();
            g.add_edge(hub, leaf, 1.0).unwrap();
        }
        let r = run(&mut g);
        assert_eq!(r.max_vertex, hub);
        assert!(
            (r.max_centrality - 1.0).abs() < 1e-12,
            "9 edges / 9 possible"
        );
        assert!((centrality_of(&g, 1).unwrap() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn in_and_out_degrees_both_count() {
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 1, 1.0).unwrap();
        run(&mut g);
        assert_eq!(centrality_of(&g, 1), Some(1.0)); // 2 incident / 2
        assert_eq!(centrality_of(&g, 0), Some(0.5));
    }

    #[test]
    fn single_vertex_graph() {
        let mut g = PropertyGraph::new();
        g.add_vertex();
        let r = run(&mut g);
        assert_eq!(r.max_centrality, 0.0);
        assert_eq!(centrality_of(&g, 0), Some(0.0));
    }

    #[test]
    fn every_vertex_is_scored() {
        let mut g = graphbig_datagen::ldbc::generate(
            &graphbig_datagen::ldbc::LdbcConfig::with_vertices(500),
        );
        run(&mut g);
        for &id in g.vertex_ids() {
            assert!(centrality_of(&g, id).is_some());
        }
    }
}
