//! Breadth-first search — the most-used workload of the suite (10 of 21
//! use cases, Figure 4) and the canonical CompStruct kernel.
//!
//! Levels are recorded in the `STATUS` vertex property *through the
//! framework* (find-vertex + property update per touched vertex), exactly
//! the structure whose in-framework cost Figure 1 measures. The frontier
//! queue is workload-private ("UserCode") — the small, hot structure the
//! paper credits for graph workloads' surprisingly high L1D hit rates.

use std::collections::VecDeque;

use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{addr_of, NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a BFS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsResult {
    /// Vertices reached (including the source).
    pub visited: u64,
    /// Depth of the deepest reached vertex.
    pub max_level: u32,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph, source: VertexId) -> BfsResult {
    run_t(g, source, &mut NullTracer)
}

/// Traced BFS from `source`. Vertices whose `STATUS` property is already
/// set are treated as visited (clear with `g.clear_prop(keys::STATUS)` to
/// rerun).
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, source: VertexId, t: &mut T) -> BfsResult {
    if g.find_vertex_t(source, t).is_none() {
        return BfsResult {
            visited: 0,
            max_level: 0,
        };
    }
    let mut queue: VecDeque<(VertexId, u32)> = VecDeque::new();
    let mut scratch: Vec<VertexId> = Vec::new();
    g.set_vertex_prop_t(source, keys::STATUS, Property::Int(0), t)
        .expect("source exists");
    queue.push_back((source, 0));
    t.store(addr_of(queue.back().unwrap()), 12);

    let mut visited = 1u64;
    let mut max_level = 0u32;
    while let Some((u, level)) = queue.pop_front() {
        t.load(addr_of(&u), 12);
        t.branch(line!() as usize, true); // loop continues
        max_level = max_level.max(level);
        t.alu(2);

        scratch.clear();
        g.visit_neighbors_t(u, t, |e, t| {
            t.alu(1);
            scratch.push(e.target);
        });
        for &v in &scratch {
            t.load(addr_of(&v), 8);
            let seen = g.get_vertex_prop_t(v, keys::STATUS, t).is_some();
            t.branch(line!() as usize, seen);
            if !seen {
                g.set_vertex_prop_t(v, keys::STATUS, Property::Int(level as i64 + 1), t)
                    .expect("neighbor exists");
                queue.push_back((v, level + 1));
                t.store(addr_of(queue.back().unwrap()), 12);
                visited += 1;
            }
        }
    }
    t.branch(line!() as usize, false); // loop exit
    BfsResult { visited, max_level }
}

/// Traced BFS over a static CSR snapshot — the representation ablation's
/// counterpart to [`run_t`].
///
/// Same algorithm, but neighbors come from the compact column array and
/// levels live in a dense vector instead of per-vertex properties: the
/// locality profile Section 2 credits to CSR ("the compact format of CSR
/// may bring better locality and lead to better cache performance"), at
/// the cost of supporting no structural updates.
pub fn run_on_csr_t<T: Tracer>(
    csr: &graphbig_framework::csr::Csr,
    source: u32,
    t: &mut T,
) -> (Vec<i64>, BfsResult) {
    let n = csr.num_vertices();
    if n == 0 || source as usize >= n {
        return (
            Vec::new(),
            BfsResult {
                visited: 0,
                max_level: 0,
            },
        );
    }
    let mut level = vec![-1i64; n];
    level[source as usize] = 0;
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(source);
    t.store(addr_of(queue.back().unwrap()), 4);
    let mut visited = 1u64;
    let mut max_level = 0u32;
    while let Some(u) = queue.pop_front() {
        t.load(addr_of(&u), 4);
        t.branch(line!() as usize, true);
        let lu = level[u as usize];
        t.load(addr_of(&level[u as usize]), 8);
        max_level = max_level.max(lu as u32);
        let mut next: Vec<u32> = Vec::new();
        csr.visit_neighbors_t(u, t, |v, _, t| {
            t.alu(1);
            next.push(v);
        });
        for v in next {
            t.load(addr_of(&level[v as usize]), 8);
            let seen = level[v as usize] >= 0;
            t.branch(line!() as usize, seen);
            if !seen {
                level[v as usize] = lu + 1;
                t.store(addr_of(&level[v as usize]), 8);
                queue.push_back(v);
                t.store(addr_of(&v), 4);
                visited += 1;
            }
        }
    }
    t.branch(line!() as usize, false);
    (level, BfsResult { visited, max_level })
}

/// Read back the level of a vertex after a run (`None` if unreached).
pub fn level_of(g: &PropertyGraph, v: VertexId) -> Option<u32> {
    g.get_vertex_prop(v, keys::STATUS)
        .and_then(|p| p.as_int())
        .map(|l| l as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_framework::trace::CountingTracer;

    /// 0 -> 1 -> 2 -> 3 chain plus 0 -> 2 shortcut.
    fn chain_with_shortcut() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for _ in 0..4 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g
    }

    #[test]
    fn levels_are_shortest_hop_counts() {
        let mut g = chain_with_shortcut();
        let r = run(&mut g, 0);
        assert_eq!(r.visited, 4);
        assert_eq!(r.max_level, 2);
        assert_eq!(level_of(&g, 0), Some(0));
        assert_eq!(level_of(&g, 1), Some(1));
        assert_eq!(level_of(&g, 2), Some(1), "shortcut wins");
        assert_eq!(level_of(&g, 3), Some(2));
    }

    #[test]
    fn unreachable_vertices_stay_unmarked() {
        let mut g = chain_with_shortcut();
        let iso = g.add_vertex();
        let r = run(&mut g, 0);
        assert_eq!(r.visited, 4);
        assert_eq!(level_of(&g, iso), None);
    }

    #[test]
    fn missing_source_returns_empty() {
        let mut g = chain_with_shortcut();
        let r = run(&mut g, 999);
        assert_eq!(r.visited, 0);
    }

    #[test]
    fn rerun_after_clear_matches() {
        let mut g = chain_with_shortcut();
        let r1 = run(&mut g, 0);
        g.clear_prop(keys::STATUS);
        let r2 = run(&mut g, 0);
        assert_eq!(r1, r2);
    }

    #[test]
    fn directed_edges_are_not_followed_backwards() {
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex();
        }
        g.add_edge(1, 0, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        let r = run(&mut g, 0);
        assert_eq!(r.visited, 1, "vertex 0 has no out-edges");
    }

    #[test]
    fn trace_is_framework_dominated() {
        let mut g = chain_with_shortcut();
        let mut t = CountingTracer::new();
        run_t(&mut g, 0, &mut t);
        assert!(
            t.framework_fraction() > 0.5,
            "BFS through primitives should be framework-heavy: {}",
            t.framework_fraction()
        );
    }

    #[test]
    fn csr_bfs_matches_vertex_centric_bfs() {
        let mut g = graphbig_datagen::Dataset::Ldbc.generate_with_vertices(400);
        let csr = graphbig_framework::csr::Csr::from_graph(&g);
        let root = g.vertex_ids()[0];
        let seq = run(&mut g, root);
        let (levels, r) = run_on_csr_t(&csr, 0, &mut graphbig_framework::trace::NullTracer);
        assert_eq!(r.visited, seq.visited);
        assert_eq!(r.max_level, seq.max_level);
        for (dense, &l) in levels.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            let want = level_of(&g, id).map(|x| x as i64).unwrap_or(-1);
            assert_eq!(l, want, "vertex {id}");
        }
    }

    #[test]
    fn csr_bfs_on_empty_graph() {
        let csr = graphbig_framework::csr::Csr::from_edges(0, &[]);
        let (levels, r) = run_on_csr_t(&csr, 0, &mut graphbig_framework::trace::NullTracer);
        assert!(levels.is_empty());
        assert_eq!(r.visited, 0);
    }

    #[test]
    fn larger_cycle_graph_visits_everything() {
        let mut g = PropertyGraph::new();
        let n = 500;
        for _ in 0..n {
            g.add_vertex();
        }
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 1.0).unwrap();
        }
        let r = run(&mut g, 0);
        assert_eq!(r.visited, n);
        assert_eq!(r.max_level, (n - 1) as u32);
    }
}
