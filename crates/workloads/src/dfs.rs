//! Depth-first search (iterative, explicit stack).
//!
//! Like BFS a pure CompStruct traversal, but the LIFO discipline produces a
//! different reuse pattern: recently pushed vertices are revisited quickly,
//! which slightly helps cache locality on community-structured graphs.

use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{addr_of, NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a DFS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsResult {
    /// Vertices reached (including the source).
    pub visited: u64,
    /// Maximum stack depth observed (≈ deepest discovery path).
    pub max_depth: u32,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph, source: VertexId) -> DfsResult {
    run_t(g, source, &mut NullTracer)
}

/// Traced DFS from `source`. Discovery order is recorded in the `STATUS`
/// property (0-based preorder index). Vertices with `STATUS` set are
/// treated as visited.
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, source: VertexId, t: &mut T) -> DfsResult {
    if g.find_vertex_t(source, t).is_none() {
        return DfsResult {
            visited: 0,
            max_depth: 0,
        };
    }
    let mut stack: Vec<(VertexId, u32)> = Vec::new();
    let mut scratch: Vec<VertexId> = Vec::new();
    let mut order = 0i64;
    let mut visited = 0u64;
    let mut max_depth = 0u32;

    stack.push((source, 0));
    t.store(addr_of(stack.last().unwrap()), 12);
    // Mark at push (placeholder -1) to avoid duplicates; assign the real
    // preorder index at pop.
    g.set_vertex_prop_t(source, keys::STATUS, Property::Int(-1), t)
        .expect("source exists");
    visited += 1;

    while let Some((u, depth)) = stack.pop() {
        t.load(addr_of(&u), 12);
        t.branch(line!() as usize, true);
        max_depth = max_depth.max(depth);
        g.set_vertex_prop_t(u, keys::STATUS, Property::Int(order), t)
            .expect("popped vertex exists");
        order += 1;
        t.alu(2);

        scratch.clear();
        g.visit_neighbors_t(u, t, |e, t| {
            t.alu(1);
            scratch.push(e.target);
        });
        // Push in reverse so the first-listed neighbor is explored first.
        for &v in scratch.iter().rev() {
            t.load(addr_of(&v), 8);
            let seen = g.get_vertex_prop_t(v, keys::STATUS, t).is_some();
            t.branch(line!() as usize, seen);
            if !seen {
                g.set_vertex_prop_t(v, keys::STATUS, Property::Int(-1), t)
                    .expect("neighbor exists");
                visited += 1;
                stack.push((v, depth + 1));
                t.store(addr_of(stack.last().unwrap()), 12);
            }
        }
    }
    t.branch(line!() as usize, false);
    DfsResult { visited, max_depth }
}

/// Discovery (preorder) index of a vertex after a run.
pub fn discovery_of(g: &PropertyGraph, v: VertexId) -> Option<i64> {
    g.get_vertex_prop(v, keys::STATUS).and_then(|p| p.as_int())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_tree(depth: u32) -> PropertyGraph {
        let n = (1u64 << (depth + 1)) - 1;
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex();
        }
        for i in 0..n {
            for c in [2 * i + 1, 2 * i + 2] {
                if c < n {
                    g.add_edge(i, c, 1.0).unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn visits_whole_tree() {
        let mut g = binary_tree(4);
        let r = run(&mut g, 0);
        assert_eq!(r.visited, 31);
        assert_eq!(r.max_depth, 4);
    }

    #[test]
    fn preorder_explores_first_child_first() {
        let mut g = binary_tree(2);
        run(&mut g, 0);
        // preorder on the 7-node tree: 0,1,3,4,2,5,6
        assert_eq!(discovery_of(&g, 0), Some(0));
        assert_eq!(discovery_of(&g, 1), Some(1));
        assert_eq!(discovery_of(&g, 3), Some(2));
        assert_eq!(discovery_of(&g, 4), Some(3));
        assert_eq!(discovery_of(&g, 2), Some(4));
        assert_eq!(discovery_of(&g, 5), Some(5));
        assert_eq!(discovery_of(&g, 6), Some(6));
    }

    #[test]
    fn dfs_and_bfs_visit_the_same_set() {
        let mut g1 = binary_tree(3);
        let mut g2 = binary_tree(3);
        let d = run(&mut g1, 0);
        let b = crate::bfs::run(&mut g2, 0);
        assert_eq!(d.visited, b.visited);
    }

    #[test]
    fn missing_source_is_empty() {
        let mut g = binary_tree(1);
        assert_eq!(run(&mut g, 77).visited, 0);
    }

    #[test]
    fn handles_cycles_without_livelock() {
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 0, 1.0).unwrap();
        let r = run(&mut g, 0);
        assert_eq!(r.visited, 3);
    }
}
