//! Topology morphing (TMorph) — "generates an undirected moral graph from a
//! directed-acyclic graph. It involves graph construction, graph traversal,
//! and graph update operations" (Section 4.2).
//!
//! Moralization (the preprocessing step of exact Bayesian inference):
//! 1. *marry* the parents of every vertex — connect each pair of co-parents;
//! 2. drop edge directions.
//!
//! The output is a fresh undirected [`PropertyGraph`] built through
//! framework primitives, so the workload exercises all three CompDyn
//! operation classes the paper lists.

use graphbig_framework::trace::{NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a moralization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TMorphResult {
    /// Vertices in the moral graph (same as the input DAG).
    pub vertices: u64,
    /// Undirected edges in the moral graph.
    pub moral_edges: u64,
    /// Marriage edges added between co-parents.
    pub marriages: u64,
}

/// Untraced convenience wrapper.
pub fn run(dag: &PropertyGraph) -> (PropertyGraph, TMorphResult) {
    run_t(dag, &mut NullTracer)
}

/// Traced moralization of `dag` into a new undirected graph.
pub fn run_t<T: Tracer>(dag: &PropertyGraph, t: &mut T) -> (PropertyGraph, TMorphResult) {
    let mut moral = PropertyGraph::with_capacity(dag.num_vertices());
    for &id in dag.vertex_ids() {
        t.alu(1);
        moral
            .add_vertex_with_id_t(id, t)
            .expect("DAG ids are unique");
    }

    let mut moral_edges = 0u64;
    let mut marriages = 0u64;
    let mut parents: Vec<VertexId> = Vec::new();
    for &v in dag.vertex_ids() {
        // Undirect the original in-edges (each DAG edge handled once, at its
        // head).
        parents.clear();
        dag.visit_parents_t(v, t, |p, t| {
            t.alu(1);
            parents.push(p);
        });
        for &p in &parents {
            if add_undirected_unique(&mut moral, p, v, t) {
                moral_edges += 1;
            }
        }
        // Marry each pair of parents.
        for i in 0..parents.len() {
            for j in (i + 1)..parents.len() {
                t.alu(2);
                let (a, b) = (parents[i], parents[j]);
                t.branch(line!() as usize, a != b);
                if a != b && add_undirected_unique(&mut moral, a, b, t) {
                    moral_edges += 1;
                    marriages += 1;
                }
            }
        }
    }
    let r = TMorphResult {
        vertices: moral.num_vertices() as u64,
        moral_edges,
        marriages,
    };
    (moral, r)
}

/// Add `a — b` if absent; returns whether an edge was added.
fn add_undirected_unique<T: Tracer>(
    g: &mut PropertyGraph,
    a: VertexId,
    b: VertexId,
    t: &mut T,
) -> bool {
    // The whole find-vertex + find-edge probe is one framework primitive
    // (the edge-existence check of the add-edge-unique interface).
    t.enter_framework();
    let exists = g
        .find_vertex_t(a, t)
        .map(|v| v.find_edge_t(b, t).is_some())
        .unwrap_or(true);
    t.exit_framework();
    t.branch(line!() as usize, exists);
    if exists {
        return false;
    }
    g.add_edge_undirected_t(a, b, 1.0, t)
        .expect("both endpoints exist");
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic v-structure: a -> c <- b.
    fn v_structure() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex();
        }
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g
    }

    #[test]
    fn v_structure_marries_the_parents() {
        let (moral, r) = run(&v_structure());
        assert_eq!(r.vertices, 3);
        assert_eq!(r.moral_edges, 3); // 0-2, 1-2, plus marriage 0-1
        assert_eq!(r.marriages, 1);
        assert!(moral.has_edge(0, 1) && moral.has_edge(1, 0));
        assert!(moral.has_edge(0, 2) && moral.has_edge(2, 0));
    }

    #[test]
    fn chain_needs_no_marriages() {
        let mut g = PropertyGraph::new();
        for _ in 0..4 {
            g.add_vertex();
        }
        for i in 0..3 {
            g.add_edge(i, i + 1, 1.0).unwrap();
        }
        let (_, r) = run(&g);
        assert_eq!(r.marriages, 0);
        assert_eq!(r.moral_edges, 3);
    }

    #[test]
    fn marriage_duplicates_are_not_double_added() {
        // two children share the same parent pair: only one marriage edge
        let mut g = PropertyGraph::new();
        for _ in 0..4 {
            g.add_vertex();
        }
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 3, 1.0).unwrap();
        g.add_edge(1, 3, 1.0).unwrap();
        let (_, r) = run(&g);
        assert_eq!(r.marriages, 1);
        assert_eq!(r.moral_edges, 5);
    }

    #[test]
    fn moral_graph_is_symmetric() {
        let dag =
            graphbig_datagen::dag::generate(&graphbig_datagen::dag::DagConfig::with_vertices(300));
        let (moral, _) = run(&dag);
        for (u, e) in moral.arcs() {
            assert!(
                moral.has_edge(e.target, u),
                "{u} — {} not symmetric",
                e.target
            );
        }
    }

    #[test]
    fn three_parents_marry_pairwise() {
        let mut g = PropertyGraph::new();
        for _ in 0..4 {
            g.add_vertex();
        }
        for p in 0..3 {
            g.add_edge(p, 3, 1.0).unwrap();
        }
        let (_, r) = run(&g);
        assert_eq!(r.marriages, 3); // C(3,2)
    }

    #[test]
    fn empty_dag_morphs_to_empty_graph() {
        let (moral, r) = run(&PropertyGraph::new());
        assert!(moral.is_empty());
        assert_eq!(r.moral_edges, 0);
    }
}
