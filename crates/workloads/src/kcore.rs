//! k-core decomposition using Matula & Beck's smallest-last peeling
//! (Section 4.2's stated algorithm).
//!
//! Vertices are repeatedly removed in order of (current) smallest degree;
//! the core number of a vertex is the largest k such that it survives into
//! a subgraph of minimum degree k. Degrees count both directions (cores are
//! defined on the undirected view). Results land in the `CORE` property.

use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{addr_of, NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a k-core run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KCoreResult {
    /// Largest core number found (the graph's degeneracy).
    pub max_core: u32,
    /// Vertices in the maximum core.
    pub max_core_size: u64,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph) -> KCoreResult {
    run_t(g, &mut NullTracer)
}

/// Traced peeling; stores each vertex's core number in `CORE`.
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, t: &mut T) -> KCoreResult {
    let ids: Vec<VertexId> = g.vertex_ids().to_vec();
    let n = ids.len();
    if n == 0 {
        return KCoreResult {
            max_core: 0,
            max_core_size: 0,
        };
    }
    // Dense index over current ids (sorted for binary search).
    let mut sorted: Vec<VertexId> = ids.clone();
    sorted.sort_unstable();
    let dense = |id: VertexId| -> usize { sorted.binary_search(&id).expect("live vertex") };

    // Simple-undirected-view degrees via framework traversal (cores are
    // defined on the deduplicated undirected graph; parallel arcs and
    // self-loops do not count).
    let mut degree: Vec<u32> = vec![0; n];
    let mut nbrs = std::collections::BTreeSet::new();
    for &id in &ids {
        nbrs.clear();
        g.visit_neighbors_t(id, t, |e, t| {
            t.alu(1);
            if e.target != id {
                nbrs.insert(e.target);
            }
        });
        g.visit_parents_t(id, t, |p, t| {
            t.alu(1);
            if p != id {
                nbrs.insert(p);
            }
        });
        degree[dense(id)] = nbrs.len() as u32;
    }

    // Bucket queue over degrees (Matula & Beck runs in O(V + E)).
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d as usize].push(v);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_core = 0u32;
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < n {
        // find the lowest non-empty bucket from `cursor`
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = buckets[cursor].pop().expect("non-empty bucket");
        t.load(addr_of(&buckets[cursor]), 8);
        if removed[v] {
            continue;
        }
        if degree[v] as usize != cursor {
            // stale entry: re-bucket at the current degree
            buckets[degree[v] as usize].push(v);
            cursor = cursor.min(degree[v] as usize);
            continue;
        }
        removed[v] = true;
        processed += 1;
        current_core = current_core.max(degree[v]);
        core[v] = current_core;
        t.alu(4);

        // decrement neighbors (both directions = undirected view)
        let id = sorted[v];
        let mut nbr_set: std::collections::BTreeSet<VertexId> = std::collections::BTreeSet::new();
        g.visit_neighbors_t(id, t, |e, _| {
            nbr_set.insert(e.target);
        });
        g.visit_parents_t(id, t, |p, _| {
            nbr_set.insert(p);
        });
        for nb in nbr_set {
            let u = dense(nb);
            t.alu(4); // dense-index binary search step + bounds math
            t.branch(line!() as usize, removed[u]);
            if !removed[u] && degree[u] > degree[v] {
                degree[u] -= 1;
                t.store(addr_of(&degree[u]), 4);
                buckets[degree[u] as usize].push(u);
                if (degree[u] as usize) < cursor {
                    cursor = degree[u] as usize;
                }
            }
        }
    }

    // Publish core numbers as properties through the framework.
    let mut max_core = 0u32;
    for (v, &c) in core.iter().enumerate() {
        g.set_vertex_prop_t(sorted[v], keys::CORE, Property::Int(c as i64), t)
            .expect("vertex exists");
        max_core = max_core.max(c);
    }
    let max_core_size = core.iter().filter(|&&c| c == max_core).count() as u64;
    KCoreResult {
        max_core,
        max_core_size,
    }
}

/// Core number of a vertex after a run.
pub fn core_of(g: &PropertyGraph, v: VertexId) -> Option<u32> {
    g.get_vertex_prop(v, keys::CORE)
        .and_then(|p| p.as_int())
        .map(|c| c as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(edges: &[(u64, u64)], n: u64) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex();
        }
        for &(a, b) in edges {
            g.add_edge_undirected(a, b, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn triangle_with_tail_has_core_2_and_1() {
        // triangle 0-1-2 plus tail 2-3
        let mut g = undirected(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let r = run(&mut g);
        assert_eq!(r.max_core, 2);
        assert_eq!(core_of(&g, 0), Some(2));
        assert_eq!(core_of(&g, 1), Some(2));
        assert_eq!(core_of(&g, 2), Some(2));
        assert_eq!(core_of(&g, 3), Some(1));
        assert_eq!(r.max_core_size, 3);
    }

    #[test]
    fn clique_core_is_size_minus_one() {
        let mut edges = Vec::new();
        for i in 0..5u64 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let mut g = undirected(&edges, 5);
        let r = run(&mut g);
        assert_eq!(r.max_core, 4);
        assert_eq!(r.max_core_size, 5);
    }

    #[test]
    fn path_graph_is_1_core() {
        let mut g = undirected(&[(0, 1), (1, 2), (2, 3)], 4);
        let r = run(&mut g);
        assert_eq!(r.max_core, 1);
        for v in 0..4 {
            assert_eq!(core_of(&g, v), Some(1));
        }
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let mut g = undirected(&[(0, 1)], 3);
        run(&mut g);
        assert_eq!(core_of(&g, 2), Some(0));
    }

    #[test]
    fn core_invariant_holds_on_random_graph() {
        use graphbig_datagen::rng::Rng;
        let mut rng = Rng::seed_from_u64(11);
        let n = 120u64;
        let mut edges = Vec::new();
        for _ in 0..400 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !edges.contains(&(a.min(b), a.max(b))) {
                edges.push((a.min(b), a.max(b)));
            }
        }
        let mut g = undirected(&edges, n);
        let r = run(&mut g);
        // Invariant: within the subgraph of vertices with core >= k, every
        // vertex has at least k neighbors in that subgraph (check k = max).
        let k = r.max_core;
        let members: Vec<u64> = (0..n).filter(|&v| core_of(&g, v) == Some(k)).collect();
        for &v in &members {
            let inside = g
                .neighbors(v)
                .filter(|e| core_of(&g, e.target).map(|c| c >= k).unwrap_or(false))
                .count();
            assert!(
                inside as u32 >= k,
                "vertex {v} has only {inside} same-core neighbors (k={k})"
            );
        }
    }

    #[test]
    fn empty_graph_has_zero_core() {
        let mut g = PropertyGraph::new();
        let r = run(&mut g);
        assert_eq!(r.max_core, 0);
    }
}
