//! Single-source shortest paths — Dijkstra's algorithm, the paper's
//! graph-path/flow analytics representative.
//!
//! Distances live in the `DISTANCE` vertex property; the priority queue is
//! workload-private. Non-negative edge weights are required (road-network
//! weights are road lengths; unit weights elsewhere).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{addr_of, NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a shortest-path run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SPathResult {
    /// Vertices with a finite distance.
    pub reached: u64,
    /// Largest finite distance.
    pub max_distance: f64,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph, source: VertexId) -> SPathResult {
    run_t(g, source, &mut NullTracer)
}

/// Traced Dijkstra from `source`; distances land in `DISTANCE` properties.
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, source: VertexId, t: &mut T) -> SPathResult {
    if g.find_vertex_t(source, t).is_none() {
        return SPathResult {
            reached: 0,
            max_distance: 0.0,
        };
    }
    // Keyed by total-order bits of the f64 distance (all weights ≥ 0).
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    let mut scratch: Vec<(VertexId, f32)> = Vec::new();

    g.set_vertex_prop_t(source, keys::DISTANCE, Property::Float(0.0), t)
        .expect("source exists");
    heap.push(Reverse((0u64, source)));

    let mut reached = 0u64;
    let mut max_distance = 0.0f64;
    while let Some(Reverse((dist_bits, u))) = heap.pop() {
        t.load(addr_of(&u), 16);
        t.branch(line!() as usize, true);
        let dist = f64::from_bits(dist_bits);
        // Lazy deletion: skip stale heap entries.
        let stored = g
            .get_vertex_prop_t(u, keys::DISTANCE, t)
            .and_then(|p| p.as_float())
            .unwrap_or(f64::INFINITY);
        t.branch(line!() as usize, dist > stored);
        if dist > stored {
            continue;
        }
        reached += 1;
        max_distance = max_distance.max(dist);
        t.alu(2);

        scratch.clear();
        g.visit_neighbors_t(u, t, |e, t| {
            t.alu(1);
            scratch.push((e.target, e.weight));
        });
        for &(v, w) in &scratch {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let cand = dist + w as f64;
            t.alu(2);
            let current = g
                .get_vertex_prop_t(v, keys::DISTANCE, t)
                .and_then(|p| p.as_float())
                .unwrap_or(f64::INFINITY);
            let improves = cand < current;
            t.branch(line!() as usize, improves);
            if improves {
                g.set_vertex_prop_t(v, keys::DISTANCE, Property::Float(cand), t)
                    .expect("neighbor exists");
                heap.push(Reverse((cand.to_bits(), v)));
                t.store(addr_of(&v), 16);
            }
        }
    }
    t.branch(line!() as usize, false);
    SPathResult {
        reached,
        max_distance,
    }
}

/// Distance of a vertex after a run (`None` if unreached).
pub fn distance_of(g: &PropertyGraph, v: VertexId) -> Option<f64> {
    g.get_vertex_prop(v, keys::DISTANCE)
        .and_then(|p| p.as_float())
}

/// Bellman–Ford reference implementation for validation (untraced, O(VE)).
pub fn bellman_ford_reference(g: &PropertyGraph, source: VertexId) -> Vec<(VertexId, f64)> {
    let ids: Vec<VertexId> = g.vertex_ids().to_vec();
    let mut dist: std::collections::HashMap<VertexId, f64> =
        ids.iter().map(|&id| (id, f64::INFINITY)).collect();
    if let Some(d) = dist.get_mut(&source) {
        *d = 0.0;
    }
    for _ in 0..ids.len() {
        let mut changed = false;
        for &u in &ids {
            let du = dist[&u];
            if du.is_infinite() {
                continue;
            }
            for e in g.neighbors(u) {
                let cand = du + e.weight as f64;
                if cand < dist[&e.target] {
                    *dist.get_mut(&e.target).unwrap() = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    ids.into_iter()
        .map(|id| (id, dist[&id]))
        .filter(|(_, d)| d.is_finite())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_diamond() -> PropertyGraph {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (1), 2 -> 3 (1), 1 -> 3 (5)
        let mut g = PropertyGraph::new();
        for _ in 0..4 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 2, 4.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g.add_edge(1, 3, 5.0).unwrap();
        g
    }

    #[test]
    fn finds_shortest_distances() {
        let mut g = weighted_diamond();
        let r = run(&mut g, 0);
        assert_eq!(r.reached, 4);
        assert_eq!(distance_of(&g, 1), Some(1.0));
        assert_eq!(distance_of(&g, 2), Some(2.0), "via vertex 1");
        assert_eq!(distance_of(&g, 3), Some(3.0), "via 1 then 2");
        assert_eq!(r.max_distance, 3.0);
    }

    #[test]
    fn matches_bellman_ford_on_random_graph() {
        use graphbig_datagen::rng::Rng;
        let mut rng = Rng::seed_from_u64(5);
        let mut g = PropertyGraph::new();
        let n = 200u64;
        for _ in 0..n {
            g.add_vertex();
        }
        for _ in 0..1000 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u, v, rng.gen_range(0.1f32..5.0)).unwrap();
            }
        }
        let reference = bellman_ford_reference(&g, 0);
        run(&mut g, 0);
        for (id, want) in reference {
            let got = distance_of(&g, id).expect("reachable in reference");
            assert!((got - want).abs() < 1e-6, "vertex {id}: {got} vs {want}");
        }
    }

    #[test]
    fn unreachable_vertices_have_no_distance() {
        let mut g = weighted_diamond();
        let iso = g.add_vertex();
        run(&mut g, 0);
        assert_eq!(distance_of(&g, iso), None);
    }

    #[test]
    fn missing_source_is_empty() {
        let mut g = weighted_diamond();
        assert_eq!(run(&mut g, 42).reached, 0);
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 0.0).unwrap();
        g.add_edge(1, 2, 0.0).unwrap();
        let r = run(&mut g, 0);
        assert_eq!(r.reached, 3);
        assert_eq!(r.max_distance, 0.0);
    }
}
