//! Metamorphic tests for the servable kernels.
//!
//! Two relations that must hold for any graph, checked over seeded random
//! edge lists (`datagen::prop`):
//!
//! * **Edge-order shuffle**: the CSR built from a shuffled edge list is the
//!   same graph, so every kernel output — and therefore its digest — must
//!   be bit-identical. Catches adjacency-order dependence (uninitialized
//!   tie-breaking, order-sensitive float accumulation) that a fixed
//!   dataset would never expose.
//! * **Vertex relabeling**: applying a permutation π to all vertex ids
//!   maps every output through π — levels/cores/distances permute, component
//!   partitions are isomorphic, triangle counts are invariant. Catches
//!   hidden dependence on vertex numbering.
//!
//! These are the same digests the serving oracle compares, so a kernel
//! that passes here and the chaos suite is checked end to end.

use graphbig_datagen::prop::{self, Config};
use graphbig_datagen::rng::Rng;
use graphbig_framework::csr::Csr;
use graphbig_runtime::{CancelToken, ThreadPool};
use graphbig_workloads::service::{run_service, ServiceGraph, ServiceOutput};
use graphbig_workloads::Workload;

/// Workloads under metamorphic test (the issue's bfs/ccomp/kcore/spath/tc
/// set — the digest-servable kernels with a sequential twin).
const WORKLOADS: [Workload; 5] = [
    Workload::Bfs,
    Workload::CComp,
    Workload::KCore,
    Workload::SPath,
    Workload::Tc,
];

/// A seeded random directed graph: `n` vertices, ~`2n` distinct non-loop
/// edges with small positive weights.
fn random_edges(rng: &mut Rng) -> (usize, Vec<(u32, u32, f32)>) {
    let n = 8 + rng.u64_below(56) as usize;
    let target = 2 * n;
    let mut seen = std::collections::BTreeSet::new();
    let mut edges = Vec::new();
    for _ in 0..4 * target {
        if edges.len() >= target {
            break;
        }
        let u = rng.u64_below(n as u64) as u32;
        let v = rng.u64_below(n as u64) as u32;
        if u == v || !seen.insert((u, v)) {
            continue;
        }
        // Weights from a small grid of exactly-representable floats so
        // equal-length paths sum bit-identically in any evaluation order.
        let w = (1 + rng.u64_below(8)) as f32 * 0.25;
        edges.push((u, v, w));
    }
    (n, edges)
}

fn run(pool: &ThreadPool, g: &ServiceGraph, w: Workload, source: u32) -> ServiceOutput {
    run_service(w, pool, g, source, &CancelToken::never()).expect("servable workload")
}

/// Canonical partition form: labels renumbered by first occurrence in
/// vertex order, so two labelings are isomorphic iff their canonical
/// forms are equal.
fn canonical_partition(labels: &[u32]) -> Vec<u32> {
    let mut rename = std::collections::BTreeMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = rename.len() as u32;
            *rename.entry(l).or_insert(next)
        })
        .collect()
}

#[test]
fn edge_order_shuffle_leaves_every_digest_bit_identical() {
    let pool = ThreadPool::new(2);
    prop::check(
        "edge_order_shuffle",
        Config::with_cases(12),
        |rng: &mut Rng| rng.next_u64(),
        |&seed: &u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let (n, edges) = random_edges(&mut rng);
            let base = ServiceGraph::build(Csr::from_edges(n, &edges));
            let mut shuffled = edges.clone();
            rng.shuffle(&mut shuffled);
            let alt = ServiceGraph::build(Csr::from_edges(n, &shuffled));
            let source = rng.u64_below(n as u64) as u32;
            for w in WORKLOADS {
                let a = run(&pool, &base, w, source).digest();
                let b = run(&pool, &alt, w, source).digest();
                assert_eq!(a, b, "{w}: digest changed under edge-order shuffle");
            }
        },
    );
}

#[test]
fn vertex_relabeling_permutes_every_output() {
    let pool = ThreadPool::new(2);
    prop::check(
        "vertex_relabeling",
        Config::with_cases(12),
        |rng: &mut Rng| rng.next_u64(),
        |&seed: &u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let (n, edges) = random_edges(&mut rng);
            let mut perm: Vec<u32> = (0..n as u32).collect();
            rng.shuffle(&mut perm);
            let relabeled: Vec<(u32, u32, f32)> = edges
                .iter()
                .map(|&(u, v, w)| (perm[u as usize], perm[v as usize], w))
                .collect();
            let base = ServiceGraph::build(Csr::from_edges(n, &edges));
            let alt = ServiceGraph::build(Csr::from_edges(n, &relabeled));
            let source = rng.u64_below(n as u64) as u32;
            let alt_source = perm[source as usize];

            // BFS levels and SPath distances permute exactly; kcore
            // numbers permute; ccomp partitions are isomorphic; triangle
            // counts are invariant.
            for w in WORKLOADS {
                let a = run(&pool, &base, w, source);
                let b = run(&pool, &alt, w, alt_source);
                match (w, a, b) {
                    (Workload::Bfs, ServiceOutput::Levels(a), ServiceOutput::Levels(b)) => {
                        for v in 0..n {
                            assert_eq!(
                                a[v], b[perm[v] as usize],
                                "bfs level of vertex {v} not permutation-equivariant"
                            );
                        }
                    }
                    (Workload::SPath, ServiceOutput::Distances(a), ServiceOutput::Distances(b)) => {
                        for v in 0..n {
                            assert_eq!(
                                a[v].to_bits(),
                                b[perm[v] as usize].to_bits(),
                                "spath distance of vertex {v} not bit-equal under relabeling"
                            );
                        }
                    }
                    (Workload::KCore, ServiceOutput::Cores(a), ServiceOutput::Cores(b)) => {
                        for v in 0..n {
                            assert_eq!(
                                a[v], b[perm[v] as usize],
                                "core number of vertex {v} not permutation-equivariant"
                            );
                        }
                    }
                    (Workload::CComp, ServiceOutput::Labels(a), ServiceOutput::Labels(b)) => {
                        let permuted: Vec<u32> = (0..n).map(|v| b[perm[v] as usize]).collect();
                        assert_eq!(
                            canonical_partition(&a),
                            canonical_partition(&permuted),
                            "ccomp partition not isomorphic under relabeling"
                        );
                    }
                    (Workload::Tc, ServiceOutput::Count(a), ServiceOutput::Count(b)) => {
                        assert_eq!(a, b, "triangle count not relabeling-invariant");
                    }
                    (w, a, b) => panic!("unexpected output shapes for {w}: {a:?} vs {b:?}"),
                }
            }
        },
    );
}

/// Batch-composition invariance: coalescing sources into one MS-BFS pass
/// must commute with both metamorphic relations. An edge-order shuffle
/// leaves every *batched* lane digest bit-identical, exactly as it does
/// the unbatched kernel — and each lane always equals its unbatched twin,
/// so batching cannot smuggle in an order dependence of its own.
#[test]
fn edge_order_shuffle_leaves_batched_lane_digests_bit_identical() {
    use graphbig_workloads::msbfs::{msbfs, MSBFS_LANES};
    let pool = ThreadPool::new(2);
    prop::check(
        "batched_edge_order_shuffle",
        Config::with_cases(10),
        |rng: &mut Rng| rng.next_u64(),
        |&seed: &u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let (n, edges) = random_edges(&mut rng);
            let base = Csr::from_edges(n, &edges);
            let mut shuffled_edges = edges.clone();
            rng.shuffle(&mut shuffled_edges);
            let shuffled = Csr::from_edges(n, &shuffled_edges);
            let lanes = 1 + rng.u64_below(MSBFS_LANES as u64) as usize;
            let sources: Vec<u32> = (0..lanes).map(|_| rng.u64_below(n as u64) as u32).collect();
            let a = msbfs(&pool, &base, &sources);
            let b = msbfs(&pool, &shuffled, &sources);
            for (l, &s) in sources.iter().enumerate() {
                let da = ServiceOutput::Levels(a[l].clone()).digest();
                let db = ServiceOutput::Levels(b[l].clone()).digest();
                assert_eq!(
                    da, db,
                    "lane {l} (source {s}): batched digest changed under edge-order shuffle"
                );
                let (solo, _) = graphbig_workloads::parallel::bfs(&pool, &base, s);
                assert_eq!(
                    da,
                    ServiceOutput::Levels(solo).digest(),
                    "lane {l} (source {s}): batched digest diverged from unbatched"
                );
            }
        },
    );
}

/// Relabeling equivariance for the batched kernel: applying a vertex
/// permutation π to the graph and to every source maps each lane's levels
/// through π — the same equivariance the unbatched kernel satisfies.
#[test]
fn vertex_relabeling_permutes_every_batched_lane() {
    use graphbig_workloads::msbfs::{msbfs, MSBFS_LANES};
    let pool = ThreadPool::new(2);
    prop::check(
        "batched_vertex_relabeling",
        Config::with_cases(10),
        |rng: &mut Rng| rng.next_u64(),
        |&seed: &u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let (n, edges) = random_edges(&mut rng);
            let mut perm: Vec<u32> = (0..n as u32).collect();
            rng.shuffle(&mut perm);
            let relabeled_edges: Vec<(u32, u32, f32)> = edges
                .iter()
                .map(|&(u, v, w)| (perm[u as usize], perm[v as usize], w))
                .collect();
            let base = Csr::from_edges(n, &edges);
            let relabeled = Csr::from_edges(n, &relabeled_edges);
            let lanes = 1 + rng.u64_below(MSBFS_LANES as u64) as usize;
            let sources: Vec<u32> = (0..lanes).map(|_| rng.u64_below(n as u64) as u32).collect();
            let mapped: Vec<u32> = sources.iter().map(|&s| perm[s as usize]).collect();
            let a = msbfs(&pool, &base, &sources);
            let b = msbfs(&pool, &relabeled, &mapped);
            for l in 0..lanes {
                for v in 0..n {
                    assert_eq!(
                        a[l][v], b[l][perm[v] as usize],
                        "lane {l}: level of vertex {v} not permutation-equivariant"
                    );
                }
                let (solo, _) = graphbig_workloads::parallel::bfs(&pool, &base, sources[l]);
                assert_eq!(a[l], solo, "lane {l}: batched diverged from unbatched");
            }
        },
    );
}
