//! Property tests over the CPU-model components: cache inclusion-style
//! invariants against reference implementations, TLB/LRU laws, and cycle
//! accounting consistency under arbitrary access streams — on the in-tree
//! harness (`graphbig_datagen::prop`), preserving the old proptest
//! invariants and 64-case budget.

use graphbig_datagen::prop::{check, vec_of, Config};
use graphbig_datagen::rng::Rng;
use graphbig_framework::trace::Tracer;
use graphbig_machine::branch::{BranchConfig, BranchPredictor};
use graphbig_machine::cache::{Cache, CacheConfig, Hierarchy};
use graphbig_machine::config::CpuConfig;
use graphbig_machine::core::CoreModel;
use graphbig_machine::tlb::{Tlb, TlbConfig};

fn addresses(rng: &mut Rng) -> Vec<usize> {
    vec_of(rng, 1..2000, |r| r.gen_range(0usize..(1 << 22)))
}

/// Reference fully-associative LRU over line addresses.
struct RefLru {
    lines: Vec<u64>,
    capacity: usize,
}

impl RefLru {
    fn access(&mut self, line: u64) -> bool {
        if let Some(p) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(p);
            self.lines.insert(0, line);
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.pop();
            }
            self.lines.insert(0, line);
            false
        }
    }
}

#[test]
fn fully_associative_cache_matches_reference_lru() {
    check(
        "fully_associative_cache_matches_reference_lru",
        Config::with_cases(64),
        addresses,
        |addrs| {
            // one set, 64 ways: the set-associative machinery degenerates to
            // a fully-associative LRU, which must match the naive reference.
            let cfg = CacheConfig {
                size_bytes: 64 * 64,
                line_bytes: 64,
                ways: 64,
            };
            let mut cache = Cache::new(cfg);
            let mut reference = RefLru {
                lines: Vec::new(),
                capacity: 64,
            };
            for &a in addrs {
                let line = (a as u64) >> 6;
                assert_eq!(cache.access_line(line), reference.access(line));
            }
        },
    );
}

#[test]
fn hierarchy_stats_are_consistent() {
    check(
        "hierarchy_stats_are_consistent",
        Config::with_cases(64),
        addresses,
        |addrs| {
            let small = CacheConfig {
                size_bytes: 4096,
                line_bytes: 64,
                ways: 2,
            };
            let mid = CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 64,
                ways: 4,
            };
            let big = CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 8,
            };
            let mut h = Hierarchy::new(small, mid, big);
            for &a in addrs {
                h.access(a, 8);
            }
            let (l1, l2, l3) = (h.l1d.stats(), h.l2.stats(), h.l3.stats());
            // misses flow downward: each level's accesses equal the level above's misses
            assert_eq!(l2.accesses, l1.misses);
            assert_eq!(l3.accesses, l2.misses);
            assert!(l1.misses <= l1.accesses);
            // a bigger cache can only hit more often on the same stream
            assert!(l3.misses <= l2.accesses);
        },
    );
}

#[test]
fn shrinking_a_cache_never_reduces_misses() {
    check(
        "shrinking_a_cache_never_reduces_misses",
        Config::with_cases(64),
        addresses,
        |addrs| {
            // LRU inclusion property: for the same stream, a cache with more
            // ways (same sets) has no more misses.
            let small = CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 64,
                ways: 2,
            };
            let large = CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
            };
            let mut a = Cache::new(small);
            let mut b = Cache::new(large);
            for &addr in addrs {
                let line = (addr as u64) >> 6;
                a.access_line(line);
                b.access_line(line);
            }
            assert!(b.stats().misses <= a.stats().misses);
        },
    );
}

#[test]
fn tlb_penalty_equals_sum_of_returned_penalties() {
    check(
        "tlb_penalty_equals_sum_of_returned_penalties",
        Config::with_cases(64),
        addresses,
        |addrs| {
            let mut tlb = Tlb::new(TlbConfig::default());
            let mut total = 0u64;
            for &a in addrs {
                total += tlb.access(a);
            }
            assert_eq!(tlb.stats().penalty_cycles, total);
            assert_eq!(tlb.stats().accesses, addrs.len() as u64);
            assert!(tlb.stats().walks <= tlb.stats().l1_misses);
        },
    );
}

#[test]
fn predictor_counts_every_branch() {
    check(
        "predictor_counts_every_branch",
        Config::with_cases(64),
        |rng| vec_of(rng, 1..2000, |r| r.gen_bool(0.5)),
        |outcomes| {
            let mut p = BranchPredictor::new(BranchConfig::default());
            for (i, &taken) in outcomes.iter().enumerate() {
                p.predict_and_train(i % 37, taken);
            }
            let s = p.stats();
            assert_eq!(s.branches, outcomes.len() as u64);
            assert!(s.mispredictions <= s.branches);
        },
    );
}

#[test]
fn core_model_fractions_always_partition() {
    check(
        "core_model_fractions_always_partition",
        Config::with_cases(64),
        addresses,
        |addrs| {
            let mut core = CoreModel::new(CpuConfig::small());
            for (i, &a) in addrs.iter().enumerate() {
                match i % 4 {
                    0 => core.load(a, 8),
                    1 => core.store(a, 8),
                    2 => core.alu(3),
                    _ => core.branch(i, a % 3 == 0),
                }
            }
            let c = core.finish();
            let (r, b, f, e) = c.cycles.fractions();
            assert!((r + b + f + e - 1.0).abs() < 1e-9);
            assert!(c.ipc() > 0.0 && c.ipc() <= 4.0);
            assert!(c.l1d_hit_rate() >= 0.0 && c.l1d_hit_rate() <= 1.0);
            assert!(c.dtlb_penalty_fraction() >= 0.0 && c.dtlb_penalty_fraction() < 1.0);
        },
    );
}
