//! The "hardware counter" readout: raw event counts plus every derived
//! metric the paper's Section 5.1 methodology lists for CPUs.

use graphbig_json::json_struct;

use crate::branch::BranchStats;
use crate::cache::CacheStats;
use crate::cycles::CycleBreakdown;
use crate::tlb::TlbStats;

/// Complete profiling result of one workload run on the core model.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PerfCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Atomic read-modify-writes.
    pub atomics: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Branch statistics from the predictor.
    pub branch: BranchStats,
    /// L1D statistics.
    pub l1d: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// L3 statistics.
    pub l3: CacheStats,
    /// ICache statistics (accesses are line fetches).
    pub icache: CacheStats,
    /// DTLB statistics.
    pub tlb: TlbStats,
    /// Top-down cycle breakdown.
    pub cycles: CycleBreakdown,
}

json_struct!(PerfCounters {
    instructions,
    loads,
    stores,
    atomics,
    branches,
    branch,
    l1d,
    l2,
    l3,
    icache,
    tlb,
    cycles,
});

impl PerfCounters {
    /// L1D misses per kilo-instruction (Figure 7).
    pub fn l1d_mpki(&self) -> f64 {
        self.l1d.mpki(self.instructions)
    }

    /// L2 misses per kilo-instruction (Figure 7).
    pub fn l2_mpki(&self) -> f64 {
        self.l2.mpki(self.instructions)
    }

    /// L3 misses per kilo-instruction (Figure 7).
    pub fn l3_mpki(&self) -> f64 {
        self.l3.mpki(self.instructions)
    }

    /// ICache misses per kilo-instruction (Figure 6).
    pub fn icache_mpki(&self) -> f64 {
        self.icache.mpki(self.instructions)
    }

    /// L1D hit rate (Figure 9).
    pub fn l1d_hit_rate(&self) -> f64 {
        self.l1d.hit_rate()
    }

    /// Branch miss-prediction rate (Figure 6).
    pub fn branch_miss_rate(&self) -> f64 {
        self.branch.miss_rate()
    }

    /// Fraction of total cycles lost to DTLB misses (Figure 6).
    pub fn dtlb_penalty_fraction(&self) -> f64 {
        let total = self.cycles.total();
        if total == 0.0 {
            0.0
        } else {
            self.tlb.penalty_cycles as f64 / total
        }
    }

    /// Instructions per cycle (Figures 8 and 9).
    pub fn ipc(&self) -> f64 {
        self.cycles.ipc(self.instructions)
    }

    /// Total modeled cycles.
    pub fn total_cycles(&self) -> f64 {
        self.cycles.total()
    }

    /// Memory instructions (loads + stores + atomics).
    pub fn memory_instructions(&self) -> u64 {
        self.loads + self.stores + self.atomics
    }

    /// Serialize raw event counts and every paper-relevant derived metric
    /// into `sink` under the `machine.*` schema. Raw counts go out as
    /// counters, derived rates as gauges, so the run manifest carries the
    /// same readout the figure tables print.
    pub fn export_metrics(&self, sink: &mut dyn graphbig_telemetry::MetricSink) {
        sink.counter("machine.core.instructions", self.instructions);
        sink.counter("machine.core.loads", self.loads);
        sink.counter("machine.core.stores", self.stores);
        sink.counter("machine.core.atomics", self.atomics);
        sink.counter("machine.core.branches", self.branches);
        sink.counter("machine.branch.mispredictions", self.branch.mispredictions);
        for (prefix, stats) in [
            ("machine.l1d", &self.l1d),
            ("machine.l2", &self.l2),
            ("machine.l3", &self.l3),
            ("machine.icache", &self.icache),
        ] {
            sink.counter(&format!("{prefix}.accesses"), stats.accesses);
            sink.counter(&format!("{prefix}.misses"), stats.misses);
        }
        sink.counter("machine.dtlb.accesses", self.tlb.accesses);
        sink.counter("machine.dtlb.l1_misses", self.tlb.l1_misses);
        sink.counter("machine.dtlb.walks", self.tlb.walks);
        sink.counter("machine.dtlb.penalty_cycles", self.tlb.penalty_cycles);
        sink.gauge("machine.cycles.retiring", self.cycles.retiring);
        sink.gauge(
            "machine.cycles.bad_speculation",
            self.cycles.bad_speculation,
        );
        sink.gauge("machine.cycles.frontend", self.cycles.frontend);
        sink.gauge("machine.cycles.backend", self.cycles.backend);
        sink.gauge("machine.cycles.total", self.total_cycles());
        sink.gauge("machine.derived.l1d_mpki", self.l1d_mpki());
        sink.gauge("machine.derived.l2_mpki", self.l2_mpki());
        sink.gauge("machine.derived.l3_mpki", self.l3_mpki());
        sink.gauge("machine.derived.icache_mpki", self.icache_mpki());
        sink.gauge("machine.derived.l1d_hit_rate", self.l1d_hit_rate());
        sink.gauge("machine.derived.branch_miss_rate", self.branch_miss_rate());
        sink.gauge(
            "machine.derived.dtlb_penalty_fraction",
            self.dtlb_penalty_fraction(),
        );
        sink.gauge("machine.derived.ipc", self.ipc());
    }

    /// Element-wise accumulation (merging per-thread counter sets).
    pub fn merge(&mut self, other: &PerfCounters) {
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.atomics += other.atomics;
        self.branches += other.branches;
        self.branch.branches += other.branch.branches;
        self.branch.mispredictions += other.branch.mispredictions;
        for (a, b) in [
            (&mut self.l1d, &other.l1d),
            (&mut self.l2, &other.l2),
            (&mut self.l3, &other.l3),
            (&mut self.icache, &other.icache),
        ] {
            a.accesses += b.accesses;
            a.misses += b.misses;
        }
        self.tlb.accesses += other.tlb.accesses;
        self.tlb.l1_misses += other.tlb.l1_misses;
        self.tlb.walks += other.tlb.walks;
        self.tlb.penalty_cycles += other.tlb.penalty_cycles;
        self.cycles.retiring += other.cycles.retiring;
        self.cycles.bad_speculation += other.cycles.bad_speculation;
        self.cycles.frontend += other.cycles.frontend;
        self.cycles.backend += other.cycles.backend;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfCounters {
        PerfCounters {
            instructions: 10_000,
            loads: 3_000,
            stores: 1_000,
            atomics: 10,
            branches: 1_500,
            branch: BranchStats {
                branches: 1_500,
                mispredictions: 75,
            },
            l1d: CacheStats {
                accesses: 4_010,
                misses: 400,
            },
            l2: CacheStats {
                accesses: 400,
                misses: 300,
            },
            l3: CacheStats {
                accesses: 300,
                misses: 200,
            },
            icache: CacheStats {
                accesses: 700,
                misses: 2,
            },
            tlb: TlbStats {
                accesses: 4_010,
                l1_misses: 500,
                walks: 100,
                penalty_cycles: 6_300,
            },
            cycles: CycleBreakdown {
                retiring: 2_500.0,
                bad_speculation: 1_125.0,
                frontend: 40.0,
                backend: 26_335.0,
            },
        }
    }

    #[test]
    fn derived_metrics() {
        let c = sample();
        assert_eq!(c.l1d_mpki(), 40.0);
        assert_eq!(c.l2_mpki(), 30.0);
        assert_eq!(c.l3_mpki(), 20.0);
        assert_eq!(c.icache_mpki(), 0.2);
        assert!((c.branch_miss_rate() - 0.05).abs() < 1e-12);
        assert!((c.l1d_hit_rate() - (1.0 - 400.0 / 4010.0)).abs() < 1e-12);
        assert!((c.dtlb_penalty_fraction() - 6_300.0 / 30_000.0).abs() < 1e-12);
        assert!((c.ipc() - 10_000.0 / 30_000.0).abs() < 1e-12);
        assert_eq!(c.memory_instructions(), 4_010);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = sample();
        a.merge(&sample());
        let s = sample();
        assert_eq!(a.instructions, 2 * s.instructions);
        assert_eq!(a.l3.misses, 2 * s.l3.misses);
        assert_eq!(a.tlb.penalty_cycles, 2 * s.tlb.penalty_cycles);
        assert_eq!(a.cycles.total(), 2.0 * s.cycles.total());
        // rates are unchanged by homogeneous merging
        assert!((a.branch_miss_rate() - s.branch_miss_rate()).abs() < 1e-12);
        assert!((a.ipc() - s.ipc()).abs() < 1e-12);
    }

    #[test]
    fn export_metrics_emits_machine_schema() {
        let c = sample();
        let mut sink: std::collections::BTreeMap<String, graphbig_telemetry::MetricValue> =
            Default::default();
        c.export_metrics(&mut sink);
        use graphbig_telemetry::MetricValue;
        assert_eq!(
            sink["machine.core.instructions"],
            MetricValue::Counter(10_000)
        );
        assert_eq!(sink["machine.l1d.misses"], MetricValue::Counter(400));
        assert_eq!(sink["machine.derived.l1d_mpki"], MetricValue::Gauge(40.0));
        assert_eq!(sink["machine.derived.ipc"], MetricValue::Gauge(c.ipc()),);
        // Every name stays inside the machine.* namespace.
        assert!(sink.keys().all(|k| k.starts_with("machine.")));
    }

    #[test]
    fn empty_counters_have_safe_metrics() {
        let c = PerfCounters::default();
        assert_eq!(c.l3_mpki(), 0.0);
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.dtlb_penalty_fraction(), 0.0);
        assert_eq!(c.l1d_hit_rate(), 1.0);
    }
}
