//! Set-associative cache with LRU replacement, and a three-level hierarchy.

use graphbig_json::json_struct;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

json_struct!(CacheConfig {
    size_bytes,
    line_bytes,
    ways,
});

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways)).max(1)
    }
}

/// Access statistics of one cache level.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes reaching this level).
    pub accesses: u64,
    /// Misses among `accesses`.
    pub misses: u64,
}

json_struct!(CacheStats { accesses, misses });

impl CacheStats {
    /// Hit rate in `[0, 1]`; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-instruction given a total instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// One set-associative cache level with true-LRU replacement.
///
/// Tags are stored per set in MRU→LRU order; a hit rotates the way to the
/// front. Timing-only model: no data, no writeback traffic (the paper's
/// MPKI metrics are demand-miss counts).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    line_shift: u32,
    sets: u64,
    /// `sets × ways` tag array; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^k");
        let sets = cfg.sets();
        Cache {
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            sets: sets as u64,
            tags: vec![u64::MAX; sets * cfg.ways],
            stats: CacheStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (contents stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Access one line; returns `true` on hit. The caller is responsible for
    /// splitting multi-line requests ([`Hierarchy::access`] does this).
    pub fn access_line(&mut self, line_addr: u64) -> bool {
        self.stats.accesses += 1;
        let set = (line_addr % self.sets) as usize;
        let ways = self.cfg.ways;
        let base = set * ways;
        let slot = &mut self.tags[base..base + ways];
        if let Some(pos) = slot.iter().position(|&t| t == line_addr) {
            // MRU rotation
            slot[..=pos].rotate_right(1);
            true
        } else {
            self.stats.misses += 1;
            slot.rotate_right(1);
            slot[0] = line_addr;
            false
        }
    }

    /// Line-address of a byte address under this cache's line size.
    #[inline]
    pub fn line_of(&self, addr: usize) -> u64 {
        (addr as u64) >> self.line_shift
    }
}

/// A three-level data-cache hierarchy (L1D → L2 → L3).
///
/// Misses propagate downward; hit/miss statistics accumulate per level. All
/// levels share a line size, as on the modeled Xeon (64 B).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// First-level data cache.
    pub l1d: Cache,
    /// Private mid-level cache.
    pub l2: Cache,
    /// Last-level cache.
    pub l3: Cache,
}

/// Which levels serviced an access (deepest level that hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Serviced by L1D.
    L1,
    /// Serviced by L2.
    L2,
    /// Serviced by L3.
    L3,
    /// Went to memory.
    Memory,
}

impl Hierarchy {
    /// Build from three geometries.
    pub fn new(l1d: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        Hierarchy {
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            l3: Cache::new(l3),
        }
    }

    /// Access `bytes` bytes at `addr`; wide accesses are split into lines.
    /// Returns the deepest hit level of the *first* line (subsequent lines
    /// still update statistics).
    pub fn access(&mut self, addr: usize, bytes: u32) -> HitLevel {
        let first = self.l1d.line_of(addr);
        let last = self.l1d.line_of(addr + bytes.saturating_sub(1) as usize);
        let mut level = HitLevel::L1;
        for (i, line) in (first..=last).enumerate() {
            let l = self.access_one(line);
            if i == 0 {
                level = l;
            }
        }
        level
    }

    fn access_one(&mut self, line: u64) -> HitLevel {
        if self.l1d.access_line(line) {
            return HitLevel::L1;
        }
        if self.l2.access_line(line) {
            return HitLevel::L2;
        }
        if self.l3.access_line(line) {
            return HitLevel::L3;
        }
        HitLevel::Memory
    }

    /// Reset all statistics.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        } // 8 sets
    }

    #[test]
    fn geometry_computes_sets() {
        assert_eq!(tiny().sets(), 8);
    }

    #[test]
    fn non_power_of_two_set_counts_work() {
        // 1 MB / 20-way / 64B lines = 819 sets: indexing falls back to modulo
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 20,
        });
        for l in 0..5000u64 {
            c.access_line(l);
        }
        for l in 0..5000u64 {
            c.access_line(l); // no panics; stats stay consistent
        }
        let s = c.stats();
        assert_eq!(s.accesses, 10_000);
        assert!(s.misses >= 5000);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(tiny());
        assert!(!c.access_line(42)); // cold miss
        assert!(c.access_line(42));
        assert!(c.access_line(42));
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(tiny());
        // three lines mapping to the same set (stride = sets = 8)
        let (a, b, d) = (0u64, 8, 16);
        c.access_line(a);
        c.access_line(b);
        c.access_line(a); // a is MRU, b is LRU
        c.access_line(d); // evicts b
        assert!(c.access_line(a), "a must survive");
        assert!(!c.access_line(b), "b was evicted");
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(tiny());
        for line in 0..8u64 {
            c.access_line(line);
        }
        for line in 0..8u64 {
            assert!(c.access_line(line), "line {line} should stay resident");
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(tiny()); // 16 lines capacity
        let lines = 64u64;
        for round in 0..4 {
            for l in 0..lines {
                let hit = c.access_line(l);
                if round > 0 {
                    assert!(
                        !hit,
                        "cyclic scan over 4x capacity must always miss under LRU"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_invariant_hits_plus_misses() {
        let mut c = Cache::new(tiny());
        // 9 lines fit (≤ 2 per set in the 8-set 2-way cache): only cold misses
        for i in 0..1000u64 {
            c.access_line(i % 9);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 1000);
        assert_eq!(s.misses, 9, "exactly the cold misses");
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0);
    }

    #[test]
    fn mpki_math() {
        let s = CacheStats {
            accesses: 100,
            misses: 5,
        };
        assert_eq!(s.mpki(1000), 5.0);
        assert_eq!(s.mpki(0), 0.0);
        assert!((s.hit_rate() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_miss_propagates() {
        let mut h = Hierarchy::new(tiny(), tiny(), tiny());
        assert_eq!(h.access(0x1000, 8), HitLevel::Memory);
        assert_eq!(h.access(0x1000, 8), HitLevel::L1);
        assert_eq!(h.l1d.stats().misses, 1);
        assert_eq!(h.l2.stats().misses, 1);
        assert_eq!(h.l3.stats().misses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let l1 = CacheConfig {
            size_bytes: 128,
            line_bytes: 64,
            ways: 1,
        }; // 2 lines
        let l2 = CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        };
        let mut h = Hierarchy::new(l1, l2, tiny());
        // touch enough lines to flush L1 but stay in L2
        for i in 0..8 {
            h.access(i * 64, 8);
        }
        let lvl = h.access(0, 8);
        assert_eq!(lvl, HitLevel::L2);
    }

    #[test]
    fn wide_access_touches_multiple_lines() {
        let mut h = Hierarchy::new(tiny(), tiny(), tiny());
        h.access(0, 256); // 4 lines
        assert_eq!(h.l1d.stats().accesses, 4);
        assert_eq!(h.access(64, 8), HitLevel::L1);
    }

    #[test]
    fn zero_byte_access_touches_one_line() {
        let mut h = Hierarchy::new(tiny(), tiny(), tiny());
        h.access(10, 0);
        assert_eq!(h.l1d.stats().accesses, 1);
    }
}
