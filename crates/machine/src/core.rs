//! [`CoreModel`]: the `Tracer` implementation that drives the whole CPU
//! model from a workload's event stream.

use graphbig_framework::trace::{Region, Tracer};

use crate::branch::BranchPredictor;
use crate::cache::{Hierarchy, HitLevel};
use crate::config::CpuConfig;
use crate::counters::PerfCounters;
use crate::cycles::{breakdown, CycleInputs};
use crate::icache::ICache;
use crate::tlb::Tlb;

/// One modeled core: every traced event updates the caches, DTLB, branch
/// predictor and ICache; [`CoreModel::finish`] runs the cycle model and
/// returns the full counter set.
pub struct CoreModel {
    cfg: CpuConfig,
    data: Hierarchy,
    tlb: Tlb,
    bp: BranchPredictor,
    icache: ICache,
    instructions: u64,
    loads: u64,
    stores: u64,
    atomics: u64,
    branches: u64,
    l2_hits: u64,
    l3_hits: u64,
    mem_accesses: u64,
}

impl CoreModel {
    /// Build a core from a machine configuration.
    pub fn new(cfg: CpuConfig) -> Self {
        CoreModel {
            data: Hierarchy::new(cfg.l1d, cfg.l2, cfg.l3),
            tlb: Tlb::new(cfg.tlb),
            bp: BranchPredictor::new(cfg.branch),
            icache: ICache::new(cfg.icache),
            cfg,
            instructions: 0,
            loads: 0,
            stores: 0,
            atomics: 0,
            branches: 0,
            l2_hits: 0,
            l3_hits: 0,
            mem_accesses: 0,
        }
    }

    /// Core with the paper-class Xeon configuration.
    pub fn xeon() -> Self {
        Self::new(CpuConfig::xeon_e5())
    }

    /// Instructions observed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The machine configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    fn data_access(&mut self, addr: usize, bytes: u32) {
        // A wide access (bulk property read/write) is really a sequence of
        // word-sized instructions; count them so MPKI stays per-instruction.
        let extra_words = (bytes.saturating_sub(1) / 8) as u64;
        self.instructions += extra_words;
        self.icache.fetch(extra_words as u32);
        self.tlb.access(addr);
        match self.data.access(addr, bytes) {
            HitLevel::L1 => {}
            HitLevel::L2 => self.l2_hits += 1,
            HitLevel::L3 => self.l3_hits += 1,
            HitLevel::Memory => self.mem_accesses += 1,
        }
    }

    /// Run the cycle model over everything observed and produce the counter
    /// readout. The core can keep tracing afterwards; `finish` is a
    /// snapshot.
    pub fn finish(&self) -> PerfCounters {
        let inputs = CycleInputs {
            instructions: self.instructions,
            branch_mispredictions: self.bp.stats().mispredictions,
            icache_misses: self.icache.stats().misses,
            l2_hits: self.l2_hits,
            l3_hits: self.l3_hits,
            mem_accesses: self.mem_accesses,
            tlb_penalty_cycles: self.tlb.stats().penalty_cycles,
        };
        PerfCounters {
            instructions: self.instructions,
            loads: self.loads,
            stores: self.stores,
            atomics: self.atomics,
            branches: self.branches,
            branch: self.bp.stats(),
            l1d: self.data.l1d.stats(),
            l2: self.data.l2.stats(),
            l3: self.data.l3.stats(),
            icache: self.icache.stats(),
            tlb: self.tlb.stats(),
            cycles: breakdown(&self.cfg, &inputs),
        }
    }
}

impl Tracer for CoreModel {
    #[inline]
    fn load(&mut self, addr: usize, bytes: u32) {
        self.instructions += 1;
        self.loads += 1;
        self.icache.fetch(1);
        self.data_access(addr, bytes);
    }

    #[inline]
    fn store(&mut self, addr: usize, bytes: u32) {
        self.instructions += 1;
        self.stores += 1;
        self.icache.fetch(1);
        self.data_access(addr, bytes);
    }

    #[inline]
    fn atomic(&mut self, addr: usize, bytes: u32) {
        self.instructions += 1;
        self.atomics += 1;
        self.icache.fetch(1);
        self.data_access(addr, bytes);
    }

    #[inline]
    fn alu(&mut self, n: u32) {
        self.instructions += n as u64;
        self.icache.fetch(n);
    }

    #[inline]
    fn branch(&mut self, site: usize, taken: bool) {
        self.instructions += 1;
        self.branches += 1;
        self.icache.fetch(1);
        self.bp.predict_and_train(site, taken);
    }

    #[inline]
    fn region(&mut self, region: Region) {
        self.icache.switch_region(region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_framework::trace::addr_of;

    fn small_core() -> CoreModel {
        CoreModel::new(CpuConfig::small())
    }

    #[test]
    fn sequential_scan_is_cache_friendly() {
        let mut core = small_core();
        let data = vec![0u64; 64 * 1024];
        for x in &data {
            core.load(addr_of(x), 8);
        }
        let c = core.finish();
        // 8 u64 per 64B line -> ~1/8 of loads miss L1 at most
        assert!(c.l1d_hit_rate() > 0.8, "hit rate {}", c.l1d_hit_rate());
        assert!(c.dtlb_penalty_fraction() < 0.4);
    }

    #[test]
    fn pointer_chase_misses_everywhere() {
        let mut core = small_core();
        // scattered boxes, random order: graph-like pointer chasing
        let boxes: Vec<Box<[u8; 256]>> = (0..20_000).map(|_| Box::new([0u8; 256])).collect();
        let mut idx = 7usize;
        for _ in 0..60_000 {
            idx = (idx * 2654435761 + 1) % boxes.len();
            core.load(addr_of(&*boxes[idx]), 8);
            core.alu(2);
        }
        let c = core.finish();
        assert!(c.l3_mpki() > 20.0, "l3 mpki {}", c.l3_mpki());
        let (_, _, _, backend) = c.cycles.fractions();
        assert!(backend > 0.7, "backend fraction {backend}");
        assert!(c.ipc() < 1.0);
    }

    #[test]
    fn property_crunching_is_compute_bound() {
        let mut core = small_core();
        let block = vec![0f64; 512];
        for _ in 0..2_000 {
            for x in &block {
                core.load(addr_of(x), 8);
                core.alu(6); // numeric work per element
            }
        }
        let c = core.finish();
        let (retiring, _, _, backend) = c.cycles.fractions();
        assert!(retiring > 0.4, "retiring {retiring}");
        assert!(backend < 0.6, "backend {backend}");
        assert!(c.ipc() > 1.0, "ipc {}", c.ipc());
    }

    #[test]
    fn icache_mpki_stays_low_for_flat_regions() {
        let mut core = small_core();
        for _ in 0..1000 {
            core.region(Region::FindVertex);
            core.alu(48);
            core.region(Region::TraverseNeighbors);
            core.alu(40);
            core.region(Region::UserCode);
            core.alu(100);
        }
        let c = core.finish();
        assert!(c.icache_mpki() < 0.7, "icache mpki {}", c.icache_mpki());
    }

    #[test]
    fn counters_count_instruction_classes() {
        let mut core = small_core();
        core.load(0x1000, 8);
        core.store(0x2000, 8);
        core.atomic(0x3000, 8);
        core.alu(5);
        core.branch(1, true);
        let c = core.finish();
        assert_eq!(c.instructions, 9);
        assert_eq!(c.loads, 1);
        assert_eq!(c.stores, 1);
        assert_eq!(c.atomics, 1);
        assert_eq!(c.branches, 1);
    }

    #[test]
    fn hit_level_accounting_is_consistent() {
        let mut core = small_core();
        let data = vec![0u8; 4 * 1024 * 1024];
        let mut idx = 3usize;
        for _ in 0..50_000 {
            idx = (idx * 1103515245 + 12345) % data.len();
            core.load(addr_of(&data[idx]), 1);
        }
        let c = core.finish();
        // every L1 miss is serviced by exactly one deeper level
        let serviced = core.l2_hits + core.l3_hits + core.mem_accesses;
        assert_eq!(serviced, c.l1d.misses);
    }
}
