//! Instruction-cache model fed by code-region fetch streams.
//!
//! The paper's counter-intuitive finding: unlike other big-data software
//! with deep library stacks, GraphBIG's ICache MPKI stays below 0.7 because
//! the framework has a *flat* code hierarchy (Section 5.2.1). We model this
//! directly: each [`Region`] owns a small synthetic code segment; executing
//! an instruction fetches the next line of the current region. The total
//! code footprint is what decides MPKI — a flat framework fits in the
//! ICache, a deep stack would not.

use graphbig_framework::trace::Region;

use crate::cache::{Cache, CacheConfig, CacheStats};

/// ICache model: a standard instruction cache plus a region-based fetch
/// address generator.
#[derive(Debug, Clone)]
pub struct ICache {
    cache: Cache,
    current_region: Region,
    /// Fetch offset (in instructions) within the current region.
    pc: u32,
    /// Synthetic bytes per instruction.
    inst_bytes: u32,
}

/// Byte offset of a region's code segment: segments are laid out
/// contiguously in "text" order, as a linker would place them — adjacent
/// small functions must not alias onto the same cache sets.
fn region_base(region: Region) -> u64 {
    let mut base = 0u64;
    for r in Region::ALL {
        if r.index() == region.index() {
            break;
        }
        base += r.code_footprint() as u64 * 4;
    }
    base
}

impl ICache {
    /// Build an ICache with the given geometry (32 KB / 8-way typical).
    pub fn new(cfg: CacheConfig) -> Self {
        ICache {
            cache: Cache::new(cfg),
            current_region: Region::UserCode,
            pc: 0,
            inst_bytes: 4,
        }
    }

    /// Execution switched to `region`: fetches restart at its segment.
    pub fn switch_region(&mut self, region: Region) {
        if region != self.current_region {
            self.current_region = region;
            self.pc = 0;
        }
    }

    /// Fetch `n` instructions from the current region, cycling through its
    /// footprint.
    pub fn fetch(&mut self, n: u32) {
        let footprint = self.current_region.code_footprint();
        let base = region_base(self.current_region);
        // Walk whole lines, not single instructions: 16 instructions per
        // 64-byte line keeps the model fast on billion-event traces.
        let per_line = (self.cache.config().line_bytes as u32 / self.inst_bytes).max(1);
        let mut remaining = n;
        while remaining > 0 {
            let addr = base + (self.pc * self.inst_bytes) as u64;
            self.cache.access_line(addr >> self.line_shift());
            let step = per_line.min(remaining);
            self.pc = (self.pc + step) % footprint.max(1);
            remaining -= step;
        }
    }

    fn line_shift(&self) -> u32 {
        self.cache.config().line_bytes.trailing_zeros()
    }

    /// Cache statistics. Note `accesses` counts line fetches, not
    /// instructions; use the core's instruction count for MPKI.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icache() -> ICache {
        ICache::new(CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        })
    }

    #[test]
    fn flat_code_fits_and_stops_missing() {
        let mut ic = icache();
        // steady-state loop over framework primitives: warm-up then hits
        for _ in 0..100 {
            for r in Region::ALL {
                ic.switch_region(r);
                ic.fetch(r.code_footprint());
            }
        }
        let s = ic.stats();
        let miss_rate = s.misses as f64 / s.accesses as f64;
        assert!(
            miss_rate < 0.05,
            "flat framework should hit, rate {miss_rate}"
        );
    }

    #[test]
    fn regions_have_disjoint_segments() {
        let mut ic = icache();
        ic.switch_region(Region::FindVertex);
        ic.fetch(48);
        let misses_a = ic.stats().misses;
        ic.switch_region(Region::AddEdge);
        ic.fetch(80);
        assert!(ic.stats().misses > misses_a, "new region cold-misses");
    }

    #[test]
    fn switching_back_to_warm_region_hits() {
        let mut ic = icache();
        ic.switch_region(Region::FindVertex);
        ic.fetch(48);
        ic.switch_region(Region::UserCode);
        ic.fetch(320);
        ic.switch_region(Region::FindVertex);
        let before = ic.stats().misses;
        ic.fetch(48);
        assert_eq!(ic.stats().misses, before, "warm region must not miss");
    }

    #[test]
    fn fetch_zero_is_noop() {
        let mut ic = icache();
        ic.fetch(0);
        assert_eq!(ic.stats().accesses, 0);
    }

    #[test]
    fn same_region_switch_keeps_pc() {
        let mut ic = icache();
        ic.switch_region(Region::UserCode);
        ic.fetch(8);
        let acc = ic.stats().accesses;
        ic.switch_region(Region::UserCode); // no-op
        ic.fetch(8); // continues in the same line
        assert_eq!(ic.stats().accesses, acc + 1);
    }
}
