//! Two-level data TLB with page-walk penalty accounting.
//!
//! The paper singles out the DTLB as "a significant source of inefficiencies
//! for graph computing" — 12.4% of cycles on average, up to 21.1% for
//! CComp — because graph footprints span many pages with low page locality
//! (Figure 6). This model charges a small penalty for L1-TLB misses that hit
//! the L2 TLB and a full page-walk penalty beyond it.

use graphbig_json::json_struct;

/// TLB geometry and penalties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlbConfig {
    /// Page size in bytes (power of two).
    pub page_bytes: usize,
    /// L1 DTLB entries (fully associative, LRU).
    pub l1_entries: usize,
    /// L2 TLB entries (fully associative, LRU).
    pub l2_entries: usize,
    /// Cycles charged for an L1 miss that hits L2.
    pub l2_hit_cycles: u64,
    /// Cycles charged for a full page walk.
    pub walk_cycles: u64,
}

json_struct!(TlbConfig {
    page_bytes,
    l1_entries,
    l2_entries,
    l2_hit_cycles,
    walk_cycles,
});

impl Default for TlbConfig {
    fn default() -> Self {
        // Ivy-Bridge-class numbers: 64-entry L1 DTLB, 512-entry STLB.
        TlbConfig {
            page_bytes: 4096,
            l1_entries: 64,
            l2_entries: 512,
            l2_hit_cycles: 2,
            walk_cycles: 35,
        }
    }
}

/// TLB statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// L1 TLB misses.
    pub l1_misses: u64,
    /// Misses in both levels (page walks).
    pub walks: u64,
    /// Total penalty cycles charged.
    pub penalty_cycles: u64,
}

json_struct!(TlbStats {
    accesses,
    l1_misses,
    walks,
    penalty_cycles,
});

/// Fully-associative LRU translation buffer (one level).
#[derive(Debug, Clone)]
struct TlbLevel {
    /// Pages in MRU→LRU order.
    pages: Vec<u64>,
    capacity: usize,
}

impl TlbLevel {
    fn new(capacity: usize) -> Self {
        TlbLevel {
            pages: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    fn access(&mut self, page: u64) -> bool {
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            self.pages[..=pos].rotate_right(1);
            true
        } else {
            if self.pages.len() == self.capacity {
                self.pages.pop();
            }
            self.pages.insert(0, page);
            false
        }
    }
}

/// The two-level DTLB model.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    page_shift: u32,
    l1: TlbLevel,
    l2: TlbLevel,
    stats: TlbStats,
}

impl Tlb {
    /// Build a DTLB from its configuration.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_bytes.is_power_of_two());
        Tlb {
            cfg,
            page_shift: cfg.page_bytes.trailing_zeros(),
            l1: TlbLevel::new(cfg.l1_entries),
            l2: TlbLevel::new(cfg.l2_entries),
            stats: TlbStats::default(),
        }
    }

    /// Translate the page containing `addr`, updating stats and returning
    /// the penalty cycles incurred by this access (0 on L1 hit).
    pub fn access(&mut self, addr: usize) -> u64 {
        self.stats.accesses += 1;
        let page = (addr as u64) >> self.page_shift;
        if self.l1.access(page) {
            return 0;
        }
        self.stats.l1_misses += 1;
        let penalty = if self.l2.access(page) {
            self.cfg.l2_hit_cycles
        } else {
            self.stats.walks += 1;
            self.cfg.walk_cycles
        };
        self.stats.penalty_cycles += penalty;
        penalty
    }

    /// Statistics so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Configuration.
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig {
            page_bytes: 4096,
            l1_entries: 4,
            l2_entries: 16,
            l2_hit_cycles: 2,
            walk_cycles: 35,
        })
    }

    #[test]
    fn same_page_hits_after_first_touch() {
        let mut t = tlb();
        assert_eq!(t.access(0x1000), 35); // cold walk
        assert_eq!(t.access(0x1008), 0);
        assert_eq!(t.access(0x1ff0), 0);
        assert_eq!(t.stats().walks, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut t = tlb();
        // touch 5 pages: page 0 falls out of the 4-entry L1 but stays in L2
        for p in 0..5usize {
            t.access(p * 4096);
        }
        let penalty = t.access(0);
        assert_eq!(penalty, 2, "L2 hit penalty expected");
    }

    #[test]
    fn beyond_l2_capacity_walks_again() {
        let mut t = tlb();
        for p in 0..20usize {
            t.access(p * 4096);
        }
        // page 0 evicted from both levels (LRU): full walk
        assert_eq!(t.access(0), 35);
    }

    #[test]
    fn penalty_accumulates() {
        let mut t = tlb();
        let mut expect = 0;
        for p in 0..8usize {
            expect += t.access(p * 4096 + 123);
        }
        assert_eq!(t.stats().penalty_cycles, expect);
        assert_eq!(t.stats().accesses, 8);
    }

    #[test]
    fn scattered_pages_walk_constantly() {
        // the graph-computing pattern: huge footprint, no page locality
        let mut t = tlb();
        let mut walks = 0;
        for i in 0..1000usize {
            let addr = (i * 2654435761) % (1 << 30);
            if t.access(addr) == 35 {
                walks += 1;
            }
        }
        assert!(
            walks > 900,
            "random pages should walk nearly always, got {walks}"
        );
    }
}
