//! The modeled CPU (Table 6's Xeon test machine).

use graphbig_json::json_struct;

use crate::branch::BranchConfig;
use crate::cache::CacheConfig;
use crate::tlb::TlbConfig;

/// Full machine description: geometry, latencies, and the analytical
/// cycle-model factors.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Human-readable model name.
    pub name: String,
    /// Core count (the paper's machine runs 16 cores).
    pub cores: usize,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Superscalar issue width.
    pub issue_width: u32,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// Last-level cache geometry.
    pub l3: CacheConfig,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data TLB configuration.
    pub tlb: TlbConfig,
    /// Branch predictor configuration.
    pub branch: BranchConfig,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L3 hit latency in cycles.
    pub l3_latency: u64,
    /// Memory latency in cycles.
    pub mem_latency: u64,
    /// Pipeline flush penalty per branch misprediction.
    pub branch_penalty: u64,
    /// Frontend stall per ICache miss.
    pub icache_penalty: u64,
    /// Memory-level parallelism divisor applied to L2/L3 hit stalls.
    pub mlp_near: f64,
    /// Memory-level parallelism divisor applied to memory-bound stalls.
    pub mlp_far: f64,
    /// Baseline backend (execution-dependency) cycles per instruction.
    pub backend_base_cpi: f64,
    /// Baseline frontend (fetch/decode bandwidth) cycles per instruction.
    pub frontend_base_cpi: f64,
}

json_struct!(CpuConfig {
    name,
    cores,
    frequency_ghz,
    issue_width,
    l1d,
    l2,
    l3,
    icache,
    tlb,
    branch,
    l2_latency,
    l3_latency,
    mem_latency,
    branch_penalty,
    icache_penalty,
    mlp_near,
    mlp_far,
    backend_base_cpi,
    frontend_base_cpi,
});

impl CpuConfig {
    /// An Ivy-Bridge-class Xeon E5 approximating the paper's test machine:
    /// 16 cores, 32 KB L1D, 256 KB L2, 20 MB shared L3, 64-entry DTLB.
    pub fn xeon_e5() -> Self {
        CpuConfig {
            name: "Intel Xeon E5-class (modeled)".into(),
            cores: 16,
            frequency_ghz: 2.6,
            issue_width: 4,
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            l3: CacheConfig {
                size_bytes: 20 * 1024 * 1024,
                line_bytes: 64,
                ways: 20,
            },
            icache: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            tlb: TlbConfig::default(),
            branch: BranchConfig::default(),
            l2_latency: 12,
            l3_latency: 36,
            mem_latency: 210,
            branch_penalty: 15,
            icache_penalty: 20,
            mlp_near: 2.0,
            mlp_far: 3.5,
            backend_base_cpi: 0.15,
            frontend_base_cpi: 0.02,
        }
    }

    /// A reduced configuration for fast unit tests and tiny experiments:
    /// same shape, smaller caches so locality effects show at small scale.
    pub fn small() -> Self {
        let mut cfg = Self::xeon_e5();
        cfg.name = "small test machine".into();
        cfg.l1d.size_bytes = 8 * 1024;
        cfg.l2.size_bytes = 64 * 1024;
        cfg.l3.size_bytes = 1024 * 1024;
        cfg.l3.ways = 16;
        cfg.tlb.l1_entries = 16;
        cfg.tlb.l2_entries = 64;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_geometry_is_power_of_two_sets() {
        let c = CpuConfig::xeon_e5();
        assert!(c.l1d.sets().is_power_of_two());
        assert!(c.l2.sets().is_power_of_two());
        assert!(c.l3.sets().is_power_of_two());
        assert!(c.icache.sets().is_power_of_two());
    }

    #[test]
    fn xeon_matches_paper_class() {
        let c = CpuConfig::xeon_e5();
        assert_eq!(c.cores, 16);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l3.size_bytes, 20 * 1024 * 1024);
    }

    #[test]
    fn small_config_is_smaller() {
        let s = CpuConfig::small();
        let x = CpuConfig::xeon_e5();
        assert!(s.l3.size_bytes < x.l3.size_bytes);
        assert!(s.tlb.l1_entries < x.tlb.l1_entries);
    }

    #[test]
    fn config_clones_and_compares() {
        let c = CpuConfig::xeon_e5();
        assert_eq!(c, c.clone());
        assert_ne!(c, CpuConfig::small());
    }
}
