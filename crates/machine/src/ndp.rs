//! Near-data-processing (NDP) first-order model — the paper's stated future
//! work ("we will also extend GraphBIG to other platforms, such as
//! near-data processing (NDP) units", Section 6, citing the MICRO-46 NDP
//! workshop report).
//!
//! The motivating observation of Section 5.2 is that graph workloads waste
//! most of their cycles in the memory hierarchy (low L2/L3 hit rates, heavy
//! DTLB penalties). An NDP unit sits next to the memory stack: simple cores
//! with no deep cache hierarchy, a short flat path to DRAM, and abundant
//! internal bandwidth. This model re-evaluates a workload's already-measured
//! counter profile under that organization, answering "what would this
//! trace cost near memory?" — the ablation the `ablation_ndp` binary prints.

use graphbig_json::json_struct;

use crate::counters::PerfCounters;

/// NDP organization.
#[derive(Debug, Clone, PartialEq)]
pub struct NdpConfig {
    /// Display name.
    pub name: String,
    /// In-stack cores.
    pub cores: usize,
    /// Clock in GHz (thermal budget in-stack is tight).
    pub clock_ghz: f64,
    /// Issue width of the simple in-order cores.
    pub issue_width: u32,
    /// Flat access latency to the local DRAM stack, in cycles.
    pub mem_latency: u64,
    /// Memory-level parallelism the simple core can sustain.
    pub mlp: f64,
    /// Fraction of memory accesses that still hit a small scratch buffer
    /// (task queues, frontier) near the core.
    pub scratch_hit_rate: f64,
}

json_struct!(NdpConfig {
    name,
    cores,
    clock_ghz,
    issue_width,
    mem_latency,
    mlp,
    scratch_hit_rate,
});

impl NdpConfig {
    /// An HMC-class NDP configuration: one simple core per vault in the
    /// logic layer (32 vaults), short in-stack access path.
    pub fn hmc_class() -> Self {
        NdpConfig {
            name: "HMC-class NDP unit (modeled)".into(),
            cores: 32,
            clock_ghz: 1.0,
            issue_width: 2,
            mem_latency: 30,
            mlp: 8.0,
            scratch_hit_rate: 0.6,
        }
    }
}

/// Modeled outcome of replaying a counter profile on the NDP unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdpEstimate {
    /// Single-core NDP cycles.
    pub cycles: f64,
    /// Wall-clock seconds on all cores (linear scaling — NDP workloads
    /// partition by memory vault).
    pub seconds: f64,
    /// Memory-stall share of the cycles.
    pub memory_fraction: f64,
}

json_struct!(NdpEstimate {
    cycles,
    seconds,
    memory_fraction,
});

/// Evaluate a measured workload profile under the NDP organization.
///
/// The instruction stream is identical; what changes is the memory system:
/// every off-scratch memory instruction pays the flat stack latency
/// (overlapped by `mlp`) instead of the cache/TLB gauntlet.
pub fn evaluate(cfg: &NdpConfig, c: &PerfCounters) -> NdpEstimate {
    let issue = c.instructions as f64 / cfg.issue_width as f64;
    let mem_ops = c.memory_instructions() as f64 * (1.0 - cfg.scratch_hit_rate);
    let mem_stall = mem_ops * cfg.mem_latency as f64 / cfg.mlp;
    // simple cores still flush on mispredicts, with a shorter pipeline
    let bad_spec = c.branch.mispredictions as f64 * 6.0;
    let cycles = issue + mem_stall + bad_spec;
    NdpEstimate {
        cycles,
        seconds: cycles / (cfg.clock_ghz * 1e9) / cfg.cores as f64,
        memory_fraction: if cycles > 0.0 {
            mem_stall / cycles
        } else {
            0.0
        },
    }
}

/// Speedup of the NDP estimate over the host-CPU profile (both at their
/// full core counts, assuming the same parallel efficiency cancels out).
pub fn speedup_vs_cpu(cfg: &NdpConfig, c: &PerfCounters, cpu_cores: usize, cpu_ghz: f64) -> f64 {
    let cpu_seconds = c.total_cycles() / (cpu_ghz * 1e9) / cpu_cores as f64;
    let ndp = evaluate(cfg, c);
    if ndp.seconds > 0.0 {
        cpu_seconds / ndp.seconds
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchStats;
    use crate::cache::CacheStats;
    use crate::cycles::CycleBreakdown;
    use crate::tlb::TlbStats;

    fn memory_bound_profile() -> PerfCounters {
        PerfCounters {
            instructions: 1_000_000,
            loads: 350_000,
            stores: 50_000,
            branches: 150_000,
            branch: BranchStats {
                branches: 150_000,
                mispredictions: 3_000,
            },
            l3: CacheStats {
                accesses: 120_000,
                misses: 60_000,
            },
            tlb: TlbStats {
                accesses: 400_000,
                l1_misses: 120_000,
                walks: 60_000,
                penalty_cycles: 2_340_000,
            },
            cycles: CycleBreakdown {
                retiring: 250_000.0,
                bad_speculation: 45_000.0,
                frontend: 20_000.0,
                backend: 6_000_000.0,
            },
            ..Default::default()
        }
    }

    fn compute_bound_profile() -> PerfCounters {
        PerfCounters {
            instructions: 1_000_000,
            loads: 100_000,
            stores: 10_000,
            cycles: CycleBreakdown {
                retiring: 250_000.0,
                bad_speculation: 10_000.0,
                frontend: 20_000.0,
                backend: 200_000.0,
            },
            ..Default::default()
        }
    }

    #[test]
    fn ndp_accelerates_memory_bound_graph_profiles() {
        let cfg = NdpConfig::hmc_class();
        let s = speedup_vs_cpu(&cfg, &memory_bound_profile(), 16, 2.6);
        assert!(s > 1.5, "NDP should win on memory-bound traces: {s}");
    }

    #[test]
    fn ndp_does_not_help_compute_bound_profiles() {
        let cfg = NdpConfig::hmc_class();
        let s = speedup_vs_cpu(&cfg, &compute_bound_profile(), 16, 2.6);
        assert!(s < 1.5, "compute-bound traces gain little near memory: {s}");
    }

    #[test]
    fn estimate_components_are_consistent() {
        let cfg = NdpConfig::hmc_class();
        let e = evaluate(&cfg, &memory_bound_profile());
        assert!(e.cycles > 0.0);
        assert!((0.0..=1.0).contains(&e.memory_fraction));
        assert!(e.seconds > 0.0);
    }

    #[test]
    fn empty_profile_is_safe() {
        let e = evaluate(&NdpConfig::hmc_class(), &PerfCounters::default());
        assert_eq!(e.cycles, 0.0);
        assert_eq!(e.memory_fraction, 0.0);
    }
}
