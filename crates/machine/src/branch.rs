//! Conditional-branch predictor (tournament: bimodal + gshare).
//!
//! Figure 6 reports branch miss-prediction rates below 5% for most GraphBIG
//! workloads with one outlier: TC reaches 10.7% because its sorted-list
//! intersections take data-dependent branches that history cannot learn.
//! A tournament predictor reproduces exactly that split: the bimodal side
//! captures the strong biases of traversal checks (most neighbors are
//! already visited), the gshare side captures loop patterns, and a per-site
//! chooser arbitrates — but neither side can learn TC's value-dependent
//! compare outcomes.

use graphbig_json::{json_enum, json_struct};

/// Which prediction scheme to run (the tournament is the default; the
/// single-component schemes exist for the predictor ablation study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// Bimodal + gshare with a per-site chooser.
    #[default]
    Tournament,
    /// History-indexed two-bit counters only.
    Gshare,
    /// Site-indexed two-bit counters only.
    Bimodal,
}

json_enum!(PredictorKind {
    Tournament,
    Gshare,
    Bimodal,
});

/// Predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchConfig {
    /// log2 of the pattern-history-table size.
    pub table_bits: u32,
    /// Global-history length in bits (≤ `table_bits`).
    pub history_bits: u32,
    /// Prediction scheme.
    pub kind: PredictorKind,
}

json_struct!(BranchConfig {
    table_bits,
    history_bits,
    kind,
});

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            table_bits: 14,
            history_bits: 12,
            kind: PredictorKind::Tournament,
        }
    }
}

/// Branch statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub branches: u64,
    /// Mispredictions among `branches`.
    pub mispredictions: u64,
}

json_struct!(BranchStats {
    branches,
    mispredictions,
});

impl BranchStats {
    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

/// The tournament predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BranchConfig,
    /// gshare pattern-history table: two-bit counters, ≥2 predicts taken.
    gshare: Vec<u8>,
    /// Bimodal (site-indexed) table of two-bit counters.
    bimodal: Vec<u8>,
    /// Per-site chooser: ≥2 prefers gshare.
    chooser: Vec<u8>,
    history: u64,
    history_mask: u64,
    table_mask: u64,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Build a predictor from its configuration.
    pub fn new(cfg: BranchConfig) -> Self {
        assert!(cfg.history_bits <= cfg.table_bits);
        let size = 1usize << cfg.table_bits;
        BranchPredictor {
            cfg,
            gshare: vec![1u8; size], // weakly not-taken
            bimodal: vec![1u8; size],
            chooser: vec![1u8; size], // weakly prefer bimodal
            history: 0,
            history_mask: (1u64 << cfg.history_bits) - 1,
            table_mask: (1u64 << cfg.table_bits) - 1,
            stats: BranchStats::default(),
        }
    }

    /// Predict and train on one branch outcome; returns `true` if the
    /// prediction was correct.
    pub fn predict_and_train(&mut self, site: usize, taken: bool) -> bool {
        self.stats.branches += 1;
        let site_idx = (site as u64 & self.table_mask) as usize;
        let gs_idx =
            ((site as u64 ^ (self.history & self.history_mask)) & self.table_mask) as usize;

        let gs_pred = self.gshare[gs_idx] >= 2;
        let bi_pred = self.bimodal[site_idx] >= 2;
        let use_gshare = self.chooser[site_idx] >= 2;
        let predicted = match self.cfg.kind {
            PredictorKind::Tournament => {
                if use_gshare {
                    gs_pred
                } else {
                    bi_pred
                }
            }
            PredictorKind::Gshare => gs_pred,
            PredictorKind::Bimodal => bi_pred,
        };
        let correct = predicted == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }

        // Train the chooser toward whichever component was right (only when
        // they disagree).
        if gs_pred != bi_pred {
            let c = &mut self.chooser[site_idx];
            if gs_pred == taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        for (table, idx) in [(&mut self.gshare, gs_idx), (&mut self.bimodal, site_idx)] {
            let counter = &mut table[idx];
            *counter = if taken {
                (*counter + 1).min(3)
            } else {
                counter.saturating_sub(1)
            };
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        correct
    }

    /// Statistics so far.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Configuration.
    pub fn config(&self) -> BranchConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchConfig::default())
    }

    #[test]
    fn tournament_beats_gshare_on_biased_noise() {
        // a strongly biased branch with pseudo-random exceptions: bimodal
        // (and therefore the tournament) captures the bias; pure gshare
        // spreads it across history entries and mispredicts more.
        let run = |kind: PredictorKind| {
            let mut p = BranchPredictor::new(BranchConfig {
                kind,
                ..BranchConfig::default()
            });
            let mut x = 0x9E3779B97F4A7C15u64;
            for _ in 0..50_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let taken = !x.is_multiple_of(10); // 90% taken
                p.predict_and_train(0x44, taken);
            }
            p.stats().miss_rate()
        };
        let tournament = run(PredictorKind::Tournament);
        let gshare = run(PredictorKind::Gshare);
        assert!(
            tournament < gshare,
            "tournament {tournament} should beat gshare {gshare} on biased noise"
        );
        assert!(tournament < 0.15, "tournament {tournament}");
    }

    #[test]
    fn learns_a_constant_branch() {
        let mut p = bp();
        for _ in 0..1000 {
            p.predict_and_train(0x40, true);
        }
        assert!(
            p.stats().miss_rate() < 0.05,
            "rate {}",
            p.stats().miss_rate()
        );
    }

    #[test]
    fn learns_a_short_loop_pattern() {
        // taken,taken,taken,not-taken — a 4-iteration loop
        let mut p = bp();
        for _ in 0..500 {
            for i in 0..4 {
                p.predict_and_train(0x80, i != 3);
            }
        }
        assert!(
            p.stats().miss_rate() < 0.10,
            "loop pattern rate {}",
            p.stats().miss_rate()
        );
    }

    #[test]
    fn random_branches_stay_unpredictable() {
        let mut p = bp();
        let mut x = 0x12345678u64;
        let mut outcomes = Vec::new();
        for _ in 0..20_000 {
            // xorshift pseudo-random outcome, uncorrelated with history
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            outcomes.push(x & 1 == 1);
        }
        for &o in &outcomes {
            p.predict_and_train(0x100, o);
        }
        let rate = p.stats().miss_rate();
        assert!(
            rate > 0.35,
            "random outcomes should mispredict ~50%, got {rate}"
        );
    }

    #[test]
    fn distinct_sites_do_not_destructively_alias() {
        let mut p = bp();
        for _ in 0..2000 {
            p.predict_and_train(0x11, true);
            p.predict_and_train(0x22, false);
        }
        assert!(
            p.stats().miss_rate() < 0.1,
            "rate {}",
            p.stats().miss_rate()
        );
    }

    #[test]
    fn stats_count_all_branches() {
        let mut p = bp();
        for i in 0..100 {
            p.predict_and_train(i, i % 2 == 0);
        }
        assert_eq!(p.stats().branches, 100);
        assert!(p.stats().mispredictions <= 100);
    }

    #[test]
    fn empty_stats_rate_is_zero() {
        assert_eq!(BranchStats::default().miss_rate(), 0.0);
    }
}
