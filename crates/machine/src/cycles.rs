//! Top-down cycle accounting (Figure 5's four categories).
//!
//! The paper breaks execution cycles into **Frontend** (fetch/decode
//! stalls), **BadSpeculation** (wrong-path work), **Retiring** (useful
//! work), and **Backend** (execution + memory stalls). This module turns the
//! simulated miss/misprediction counts into that breakdown with a simple
//! analytical model:
//!
//! * retiring: `instructions / issue_width`;
//! * bad speculation: mispredictions × flush penalty;
//! * frontend: ICache misses × fetch penalty;
//! * backend: a base dependency CPI plus memory stalls — per-level miss
//!   counts × latency, divided by a memory-level-parallelism factor — plus
//!   the DTLB's page-walk cycles.
//!
//! Fixed MLP divisors keep the model analytical; the workload-to-workload
//! *differences* all come from the real traces.

use graphbig_json::json_struct;

use crate::config::CpuConfig;

/// Raw inputs to the cycle model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CycleInputs {
    /// Retired instructions.
    pub instructions: u64,
    /// Branch mispredictions.
    pub branch_mispredictions: u64,
    /// ICache misses.
    pub icache_misses: u64,
    /// Accesses that missed L1D but hit L2.
    pub l2_hits: u64,
    /// Accesses that missed L2 but hit L3.
    pub l3_hits: u64,
    /// Accesses that went to memory.
    pub mem_accesses: u64,
    /// DTLB penalty cycles.
    pub tlb_penalty_cycles: u64,
}

json_struct!(CycleInputs {
    instructions,
    branch_mispredictions,
    icache_misses,
    l2_hits,
    l3_hits,
    mem_accesses,
    tlb_penalty_cycles,
});

/// The four-way breakdown plus totals.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct CycleBreakdown {
    /// Useful-work cycles.
    pub retiring: f64,
    /// Wrong-speculation cycles.
    pub bad_speculation: f64,
    /// Fetch/decode stall cycles.
    pub frontend: f64,
    /// Execution + memory stall cycles.
    pub backend: f64,
}

json_struct!(CycleBreakdown {
    retiring,
    bad_speculation,
    frontend,
    backend,
});

impl CycleBreakdown {
    /// Total modeled cycles.
    pub fn total(&self) -> f64 {
        self.retiring + self.bad_speculation + self.frontend + self.backend
    }

    /// Fractions in `[0,1]` in `(retiring, bad_spec, frontend, backend)`
    /// order; all zeros for an empty run.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (
                self.retiring / t,
                self.bad_speculation / t,
                self.frontend / t,
                self.backend / t,
            )
        }
    }

    /// Instructions per cycle for a given instruction count.
    pub fn ipc(&self, instructions: u64) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            instructions as f64 / t
        }
    }
}

/// Evaluate the analytical model.
pub fn breakdown(cfg: &CpuConfig, inp: &CycleInputs) -> CycleBreakdown {
    let retiring = inp.instructions as f64 / cfg.issue_width as f64;
    let bad_speculation = inp.branch_mispredictions as f64 * cfg.branch_penalty as f64;
    let frontend = inp.icache_misses as f64 * cfg.icache_penalty as f64
        + inp.instructions as f64 * cfg.frontend_base_cpi;
    let mem_stall = inp.l2_hits as f64 * cfg.l2_latency as f64 / cfg.mlp_near
        + inp.l3_hits as f64 * cfg.l3_latency as f64 / cfg.mlp_near
        + inp.mem_accesses as f64 * cfg.mem_latency as f64 / cfg.mlp_far;
    let backend =
        inp.instructions as f64 * cfg.backend_base_cpi + mem_stall + inp.tlb_penalty_cycles as f64;
    CycleBreakdown {
        retiring,
        bad_speculation,
        frontend,
        backend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CpuConfig {
        CpuConfig::xeon_e5()
    }

    #[test]
    fn clean_run_is_mostly_retiring() {
        let inp = CycleInputs {
            instructions: 1_000_000,
            ..Default::default()
        };
        let b = breakdown(&cfg(), &inp);
        let (ret, bad, fe, be) = b.fractions();
        assert!(ret > 0.55, "retiring {ret}");
        assert_eq!(bad, 0.0);
        assert!(fe < 0.1, "frontend base only: {fe}");
        assert!(be < 0.4); // only the base CPI
    }

    #[test]
    fn memory_bound_run_is_backend_dominated() {
        // graph-traversal profile: ~5% of instructions miss to memory
        let inp = CycleInputs {
            instructions: 1_000_000,
            mem_accesses: 50_000,
            tlb_penalty_cycles: 500_000,
            ..Default::default()
        };
        let b = breakdown(&cfg(), &inp);
        let (_, _, _, be) = b.fractions();
        assert!(be > 0.85, "backend {be}");
        assert!(b.ipc(inp.instructions) < 1.0);
    }

    #[test]
    fn branchy_run_shows_bad_speculation() {
        // TC-like profile: 10% of instructions are branches, 10% mispredict
        let inp = CycleInputs {
            instructions: 1_000_000,
            branch_mispredictions: 10_000,
            ..Default::default()
        };
        let b = breakdown(&cfg(), &inp);
        let (_, bad, _, _) = b.fractions();
        assert!(bad > 0.2, "bad speculation {bad}");
    }

    #[test]
    fn fractions_sum_to_one() {
        let inp = CycleInputs {
            instructions: 12345,
            branch_mispredictions: 17,
            icache_misses: 3,
            l2_hits: 100,
            l3_hits: 50,
            mem_accesses: 25,
            tlb_penalty_cycles: 99,
        };
        let (a, b_, c, d) = breakdown(&cfg(), &inp).fractions();
        assert!((a + b_ + c + d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_cycles() {
        let b = breakdown(&cfg(), &CycleInputs::default());
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.ipc(0), 0.0);
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn ipc_cannot_exceed_issue_width() {
        let inp = CycleInputs {
            instructions: 1000,
            ..Default::default()
        };
        let b = breakdown(&cfg(), &inp);
        assert!(b.ipc(1000) <= cfg().issue_width as f64 + 1e-12);
    }
}
