//! # graphbig-machine
//!
//! A CPU architecture model that stands in for the hardware performance
//! counters the paper reads on its Xeon test machine (Table 6). The model is
//! driven by the *real* memory/branch/instruction event stream of the
//! workloads (via the framework's `Tracer` interface) and produces the ~30
//! counters and derived metrics of Section 5.1:
//!
//! * [`cache`] — set-associative L1D/L2/L3 hierarchy with LRU replacement →
//!   cache MPKI and hit rates (Figures 7 and 9);
//! * [`tlb`] — two-level DTLB with page-walk penalties → DTLB miss-cycle
//!   percentage (Figure 6);
//! * [`branch`] — gshare conditional-branch predictor → branch miss rate
//!   (Figure 6);
//! * [`icache`] — instruction cache fed by code-region fetch streams →
//!   ICache MPKI (Figure 6);
//! * [`cycles`] — top-down cycle accounting (Frontend / Backend / Retiring /
//!   BadSpeculation) → execution breakdown and IPC (Figures 5 and 8);
//! * [`core`] — [`core::CoreModel`], the `Tracer` implementation wiring all
//!   of the above together;
//! * [`config`] — the modeled machine ([`config::CpuConfig::xeon_e5`]
//!   approximates the paper's dual-socket 16-core Xeon).
//!
//! The model is deliberately *analytical* in its cycle attribution (fixed
//! latencies, fixed memory-level parallelism factors): the paper's findings
//! are about the *relative* shape of these metrics across workloads and
//! datasets, which is carried by the genuine traces, not by cycle-exact
//! simulation.

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod core;
pub mod counters;
pub mod cycles;
pub mod icache;
pub mod ndp;
pub mod tlb;

pub use crate::core::CoreModel;
pub use config::CpuConfig;
pub use counters::PerfCounters;
