//! Frontier-engine benchmark: classic top-down BFS vs the
//! direction-optimizing hybrid on social-network-shaped graphs.
//!
//! The LDBC generator at 2^16 vertices is the headline comparison (the
//! direction switch pays off on low-diameter, hub-heavy graphs where the
//! middle levels sweep most of the edge set bottom-up); the Twitter
//! generator checks the same effect on a power-law degree distribution.
//! Baseline numbers live in `results/BENCH_frontier.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use graphbig::framework::csr::{BiCsr, Csr};
use graphbig::prelude::*;
use graphbig::workloads::parallel;

fn bench_frontier(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    for (name, dataset, n) in [
        ("ldbc_64k", Dataset::Ldbc, 1usize << 16),
        ("twitter_32k", Dataset::Twitter, 1usize << 15),
    ] {
        let g = dataset.generate_with_vertices(n);
        let csr = Csr::from_graph(&g);
        let bi = BiCsr::directed(csr.clone());
        let pool = ThreadPool::new(threads);

        let mut group = c.benchmark_group(format!("frontier_{name}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("top_down", threads), &(), |b, _| {
            b.iter(|| black_box(parallel::bfs(&pool, &csr, 0)))
        });
        group.bench_with_input(BenchmarkId::new("dir_opt", threads), &(), |b, _| {
            b.iter(|| black_box(parallel::bfs_dir_opt(&pool, &bi, 0)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_frontier);
criterion_main!(benches);
