//! Frontier-engine benchmark: classic top-down BFS vs the
//! direction-optimizing hybrid on social-network-shaped graphs.
//!
//! The LDBC generator at 2^16 vertices is the headline comparison (the
//! direction switch pays off on low-diameter, hub-heavy graphs where the
//! middle levels sweep most of the edge set bottom-up); the Twitter
//! generator checks the same effect on a power-law degree distribution.
//! Baseline numbers live in `results/BENCH_frontier.json`; the hermetic
//! (in-tree PRNG + std-sync) re-run lives in `results/BENCH_hermetic.json`.

use graphbig::framework::csr::{BiCsr, Csr};
use graphbig::prelude::*;
use graphbig::workloads::parallel;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let mut r = Runner::new("frontier");
    for (name, dataset, n) in [
        ("ldbc_64k", Dataset::Ldbc, 1usize << 16),
        ("twitter_32k", Dataset::Twitter, 1usize << 15),
    ] {
        let g = dataset.generate_with_vertices(n);
        let csr = Csr::from_graph(&g);
        let bi = BiCsr::directed(csr.clone());
        let pool = ThreadPool::new(threads);

        r.bench(&format!("{name}/top_down/{threads}t"), || {
            black_box(parallel::bfs(&pool, &csr, 0));
        });
        r.bench(&format!("{name}/dir_opt/{threads}t"), || {
            black_box(parallel::bfs_dir_opt(&pool, &bi, 0));
        });
    }
    r.finish();
}
