//! Wall-clock benchmarks of the dynamic-graph workloads (GCons, GUp,
//! TMorph) — the paper's CompDyn category.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use graphbig::prelude::*;
use graphbig::workloads::harness::orient_to_dag;
use graphbig::workloads::{gcons, gup, tmorph};

fn bench_dynamic(c: &mut Criterion) {
    let base = Dataset::Ldbc.generate_with_vertices(4_000);
    let n = base.num_vertices();
    let dense: std::collections::HashMap<u64, u64> = base
        .vertex_ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i as u64))
        .collect();
    let edges: Vec<(u64, u64, f32)> = base
        .arcs()
        .map(|(u, e)| (dense[&u], dense[&e.target], e.weight))
        .collect();

    let mut group = c.benchmark_group("dynamic");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.len() as u64));

    group.bench_function("gcons_ldbc4k", |b| {
        b.iter(|| black_box(gcons::run(n, &edges)))
    });

    group.bench_function("gup_delete_10pct", |b| {
        b.iter_batched(
            || {
                let (g, _) = gcons::run(n, &edges);
                let victims = gup::pick_victims(&g, n / 10, 7);
                (g, victims)
            },
            |(mut g, victims)| black_box(gup::run(&mut g, &victims)),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("tmorph_ldbc4k", |b| {
        let dag = orient_to_dag(&base);
        b.iter(|| black_box(tmorph::run(&dag)))
    });

    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
