//! Wall-clock benchmarks of the dynamic-graph workloads (GCons, GUp,
//! TMorph) — the paper's CompDyn category.

use graphbig::prelude::*;
use graphbig::workloads::harness::orient_to_dag;
use graphbig::workloads::{gcons, gup, tmorph};
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let base = Dataset::Ldbc.generate_with_vertices(4_000);
    let n = base.num_vertices();
    let dense: std::collections::HashMap<u64, u64> = base
        .vertex_ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i as u64))
        .collect();
    let edges: Vec<(u64, u64, f32)> = base
        .arcs()
        .map(|(u, e)| (dense[&u], dense[&e.target], e.weight))
        .collect();

    let mut r = Runner::new("dynamic");

    r.bench("gcons_ldbc4k", || {
        black_box(gcons::run(n, &edges));
    });

    r.bench_with_setup(
        "gup_delete_10pct",
        || {
            let (g, _) = gcons::run(n, &edges);
            let victims = gup::pick_victims(&g, n / 10, 7);
            (g, victims)
        },
        |(mut g, victims)| black_box(gup::run(&mut g, &victims)),
    );

    let dag = orient_to_dag(&base);
    r.bench("tmorph_ldbc4k", || {
        black_box(tmorph::run(&dag));
    });

    r.finish();
}
