//! Telemetry overhead benchmark: the zero-cost claim, measured.
//!
//! Runs direction-optimizing BFS over the LDBC generator at 2^16 vertices
//! three ways:
//!
//! * `runtime_off` — spans compiled in (this crate's default `telemetry`
//!   feature) but the runtime gate closed: the recording path is a single
//!   relaxed atomic load per span site.
//! * `runtime_on` — gate open, spans buffered per thread; the budget is
//!   <2% over `runtime_off` (a handful of spans per BFS level).
//! * building with `--no-default-features` turns the whole crate into
//!   no-ops and makes `runtime_on`/`runtime_off` identical — compare that
//!   run's numbers against a default build to verify the compile-time
//!   claim.
//!
//! Baseline numbers live in `results/BENCH_telemetry_overhead.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphbig::framework::csr::{BiCsr, Csr};
use graphbig::prelude::*;
use graphbig::telemetry;
use graphbig::workloads::parallel;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let g = Dataset::Ldbc.generate_with_vertices(1usize << 16);
    let bi = BiCsr::directed(Csr::from_graph(&g));
    let pool = ThreadPool::new(threads);

    let mut group = c.benchmark_group("telemetry_overhead_ldbc_64k");
    group.sample_size(10);

    telemetry::disable();
    group.bench_function("bfs_dir_opt/runtime_off", |b| {
        b.iter(|| black_box(parallel::bfs_dir_opt(&pool, &bi, 0)))
    });

    telemetry::enable();
    group.bench_function("bfs_dir_opt/runtime_on", |b| {
        b.iter(|| {
            let r = black_box(parallel::bfs_dir_opt(&pool, &bi, 0));
            // Drain per-thread buffers so memory stays flat across samples
            // and each iteration pays the same recording cost.
            drop(telemetry::take_trace());
            r
        })
    });
    telemetry::disable();
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
