//! Telemetry overhead benchmark: the zero-cost claim, measured.
//!
//! Runs direction-optimizing BFS over the LDBC generator at 2^16 vertices
//! three ways:
//!
//! * `runtime_off` — spans compiled in (this crate's default `telemetry`
//!   feature) but the runtime gate closed: the recording path is a single
//!   relaxed atomic load per span site.
//! * `runtime_on` — gate open, spans buffered per thread; the budget is
//!   <2% over `runtime_off` (a handful of spans per BFS level).
//! * building with `--no-default-features` turns the whole crate into
//!   no-ops and makes `runtime_on`/`runtime_off` identical — compare that
//!   run's numbers against a default build to verify the compile-time
//!   claim.
//!
//! Baseline numbers live in `results/BENCH_telemetry_overhead.json`.

use graphbig::framework::csr::{BiCsr, Csr};
use graphbig::prelude::*;
use graphbig::telemetry;
use graphbig::workloads::parallel;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let g = Dataset::Ldbc.generate_with_vertices(1usize << 16);
    let bi = BiCsr::directed(Csr::from_graph(&g));
    let pool = ThreadPool::new(threads);

    let mut r = Runner::new("telemetry_overhead_ldbc_64k");

    telemetry::disable();
    r.bench("bfs_dir_opt/runtime_off", || {
        black_box(parallel::bfs_dir_opt(&pool, &bi, 0));
    });

    telemetry::enable();
    r.bench("bfs_dir_opt/runtime_on", || {
        black_box(parallel::bfs_dir_opt(&pool, &bi, 0));
        // Drain per-thread buffers so memory stays flat across samples
        // and each iteration pays the same recording cost.
        drop(telemetry::take_trace());
    });
    telemetry::disable();
    r.finish();
}
