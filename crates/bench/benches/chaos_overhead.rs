//! Failpoint overhead benchmark: the zero-cost claim for fault injection.
//!
//! Mirrors `telemetry_overhead.rs` for the chaos layer. Measures two
//! levels, each in two states:
//!
//! * `raw_site/*` — one `failpoint!` evaluation in a tight loop:
//!   `disarmed` is the gate everyone pays when the `chaos` feature is on
//!   but no plan is armed (one relaxed atomic load); `armed_inert` is the
//!   worst case while a plan is armed — the site matches a spec whose
//!   probability is 0, so every hit takes the registry lock and decides
//!   "no fire".
//! * `degree_roundtrip/*` — a full point-query round trip through the
//!   engine (submit → executor → resolve), which crosses four failpoint
//!   sites; the armed-inert delta shows what a running chaos mix adds to
//!   queries the plan never touches.
//!
//! Building with `--no-default-features` compiles every failpoint out
//! (`failpoint!` becomes an inlined `None`) — compare that run against a
//! default build to verify the compile-time claim. Baseline numbers live
//! in `results/BENCH_chaos_overhead.json`.

use graphbig::chaos::{self, FaultAction, FaultPlan, FaultSpec, Trigger};
use graphbig::engine::{Engine, EngineConfig, Query};
use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use graphbig::telemetry::metrics::Registry;
use graphbig_bench::timing::{black_box, Runner};

fn inert(site: &str) -> FaultSpec {
    FaultSpec {
        site: site.to_string(),
        trigger: Trigger::Probability,
        action: FaultAction::Delay,
        p: 0.0,
        n: 0,
        schedule: Vec::new(),
        delay_us: 0,
    }
}

fn main() {
    let mut r = Runner::new("chaos_overhead_ldbc_4k");
    if !chaos::compiled() {
        eprintln!("failpoints compiled out: both states measure the bare loop");
    }

    chaos::disarm();
    let mut key = 0u64;
    r.bench("raw_site/disarmed", || {
        key = key.wrapping_add(1);
        black_box(chaos::fire("bench.site", black_box(key)));
    });

    chaos::arm(&FaultPlan {
        seed: 1,
        max_retries: 0,
        backoff_base_us: 0,
        backoff_cap_us: 0,
        faults: vec![inert("bench.site")],
    });
    r.bench("raw_site/armed_inert", || {
        key = key.wrapping_add(1);
        black_box(chaos::fire("bench.site", black_box(key)));
    });
    chaos::disarm();

    let reg = Registry::new();
    let engine = Engine::with_registry(
        EngineConfig {
            executors: 1,
            pool_threads: 2,
            ..EngineConfig::default()
        },
        Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(1usize << 12)),
        &reg,
    );
    let n = 1u64 << 12;
    let mut v = 0u64;
    r.bench("degree_roundtrip/disarmed", || {
        v = (v + 1) % n;
        let ticket = engine.submit(Query::Degree { vertex: v as u32 }).unwrap();
        black_box(ticket.wait());
    });

    chaos::arm(&FaultPlan {
        seed: 1,
        max_retries: 0,
        backoff_base_us: 0,
        backoff_cap_us: 0,
        faults: vec![
            inert("engine.admit"),
            inert("engine.dequeue"),
            inert("engine.run.pre"),
            inert("engine.run.post"),
        ],
    });
    r.bench("degree_roundtrip/armed_inert", || {
        v = (v + 1) % n;
        let ticket = engine.submit(Query::Degree { vertex: v as u32 }).unwrap();
        black_box(ticket.wait());
    });
    chaos::disarm();

    r.finish();
}
