//! Write-path benchmarks on LDBC-64k: mutation-apply cost, overlay-read
//! overhead vs the base CSR, compaction fold cost and publish pause, and
//! the incremental connected-components kernel against its full-recompute
//! fallback (the `results/BENCH_mutation.json` artifact).
//!
//! Before timing anything, a concurrent mixed read/write replay is
//! verified against the sequential write oracle — a benchmark of a wrong
//! final state is worthless. After timing, the incremental-ccomp median
//! is asserted >= 5x faster than recompute on a small delta batch, and
//! the emitted JSON gains a `meta` object with the non-timing figures
//! (overlay bytes/edge, measured compaction pause).

use graphbig::engine::traffic::{
    generate_ops, live_engine_digest, mutation_oracle_digest, resolve_write, run_mix, WriteOp,
};
use graphbig::engine::{Engine, EngineConfig, IncrementalCComp, MixSpec, MutationBuffer};
use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use graphbig::runtime::CancelToken;
use graphbig::telemetry::metrics::{MetricValue, Registry};
use graphbig::workloads::service::{self, ServiceOutput};
use graphbig::workloads::Workload;
use graphbig_bench::timing::{black_box, Runner};
use graphbig_json::ToJson;

fn main() {
    let emit_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--emit")
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let n = 1usize << 16;
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n));
    let reg = Registry::new();
    let engine = Engine::with_registry(
        EngineConfig {
            executors: 2,
            pool_threads: 4,
            compact_threshold: 0, // folds are timed explicitly below
            ..EngineConfig::default()
        },
        csr,
        &reg,
    );
    let base = engine.store().snapshot();
    let g = base.graph();

    // Correctness gate: a concurrent mixed replay must converge on the
    // sequential write oracle before any of its parts are worth timing.
    let spec = MixSpec {
        seed: 42,
        requests: 200,
        clients: 4,
        point_weight: 45,
        traversal_weight: 10,
        analytics_weight: 5,
        write_weight: 40,
        ..MixSpec::default()
    };
    let ops = generate_ops(&spec, n as u32);
    let expected = mutation_oracle_digest(g, &ops);
    let report = run_mix(&engine, &spec);
    assert_eq!(report.admitted as usize, spec.requests);
    assert_eq!(
        live_engine_digest(&engine),
        expected,
        "concurrent replay must match the sequential write oracle"
    );
    engine.compact();
    eprintln!("oracle: mixed 200-request replay matches the sequential write replay on LDBC-64k");

    // Pre-resolved insert batches: every (u, v) pair fresh and valid.
    let insert = |i: u64| {
        resolve_write(
            g,
            WriteOp::Insert {
                u: (i.wrapping_mul(7919) % n as u64) as u32,
                salt: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            },
        )
    };
    let single = insert(1);
    let batch64: Vec<_> = (0..64u64).flat_map(insert).collect();
    let batch1k: Vec<_> = (0..1_000u64).flat_map(insert).collect();

    // A 1k-edge overlay for the read-overhead and fold benches.
    let loaded = MutationBuffer::new(1, n as u32);
    loaded.apply(g, &batch1k);
    let overlay1k = loaded.current();
    let bytes_per_edge = overlay1k.byte_size() as f64 / overlay1k.overlay_edges() as f64;

    let mut r = Runner::new("mutation_ldbc64k");
    r.bench_with_setup(
        "write/apply_single",
        || MutationBuffer::new(1, n as u32),
        |buf| {
            black_box(buf.apply(g, &single));
        },
    );
    r.bench_with_setup(
        "write/apply_batch64",
        || MutationBuffer::new(1, n as u32),
        |buf| {
            black_box(buf.apply(g, &batch64));
        },
    );
    // End-to-end write admission + apply through the engine; the overlay
    // is folded between samples (outside the timed region) so every
    // sample writes against a comparably small overlay.
    let mut i = 100_000u64;
    r.bench_with_setup(
        "write/engine_mutate",
        || engine.compact(),
        |_| {
            i += 1;
            black_box(engine.mutate(&insert(i)).unwrap());
        },
    );

    // Overlay-read overhead: the same point read through the base CSR and
    // through a 1k-edge overlay.
    r.bench("read/degree_base", || {
        black_box(g.degree(12_345));
    });
    r.bench("read/degree_overlay1k", || {
        black_box(overlay1k.degree(g, 12_345));
    });
    r.bench("read/khop2_base", || {
        black_box(g.k_hop(4_321, 2));
    });
    r.bench("read/khop2_overlay1k", || {
        black_box(overlay1k.k_hop(g, 4_321, 2));
    });

    // The fold: materializing base + 1k delta into a fresh sharded CSR.
    r.bench("compact/fold_1k_delta", || {
        black_box(overlay1k.materialize(g, 8));
    });

    // Incremental connected components over a small insert batch vs the
    // recompute fallback (materialize + full kernel) it replaces.
    let never = CancelToken::never();
    let ServiceOutput::Labels(labels) =
        service::run_service(Workload::CComp, engine.pool(), g.service(), 0, &never).unwrap()
    else {
        panic!("ccomp yields labels");
    };
    let small = MutationBuffer::new(1, n as u32);
    small.apply(g, &batch64);
    let small_ov = small.current();
    let log = small_ov.insert_log().to_vec();
    let n_total = small_ov.n_total() as usize;
    r.bench_with_setup(
        "ccomp/incremental_64_inserts",
        || IncrementalCComp::new(&labels),
        |mut inc| {
            inc.advance(&log);
            black_box(inc.labels(n_total));
        },
    );
    r.bench("ccomp/recompute_64_inserts", || {
        let folded = small_ov.materialize(g, 8);
        black_box(
            service::run_service(Workload::CComp, engine.pool(), folded.service(), 0, &never)
                .unwrap(),
        );
    });

    let median = |results: &[graphbig_bench::timing::BenchResult], name: &str| {
        results
            .iter()
            .find(|b| b.name.ends_with(name))
            .map(|b| b.median_ns)
            .unwrap_or(0.0)
    };
    let inc_ns = median(r.results(), "ccomp/incremental_64_inserts");
    let re_ns = median(r.results(), "ccomp/recompute_64_inserts");
    if inc_ns > 0.0 && re_ns > 0.0 {
        let speedup = re_ns / inc_ns;
        eprintln!("incremental ccomp speedup over recompute: {speedup:.1}x");
        assert!(
            speedup >= 5.0,
            "incremental ccomp must be >=5x recompute on a 64-insert delta, got {speedup:.1}x"
        );
    }

    // Measured publish pause: fold 1k edges through the engine and read
    // the critical-section histogram the compactor records.
    engine.mutate(&batch1k).unwrap();
    engine.compact();
    let pause_us = match reg.snapshot().get("engine.compact.pause_us") {
        Some(MetricValue::Histogram(h)) => h.quantile(0.99) as f64,
        _ => 0.0,
    };
    eprintln!(
        "overlay bytes/edge: {bytes_per_edge:.1}; compaction publish pause p99: {pause_us}us"
    );

    r.finish();
    // The artifact carries the non-timing figures too.
    if let Some(path) = emit_path {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(graphbig_json::Json::Obj(mut doc)) = graphbig_json::parse(&text) {
                let meta = graphbig_json::ObjBuilder::new()
                    .push("overlay_bytes_per_edge", bytes_per_edge.to_json())
                    .push("compact_pause_p99_us", pause_us.to_json())
                    .build();
                doc.push(("meta".to_string(), meta));
                let _ = std::fs::write(&path, graphbig_json::Json::Obj(doc).to_pretty() + "\n");
            }
        }
    }
}
