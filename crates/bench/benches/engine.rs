//! Serving-path benchmarks of the concurrent query engine on LDBC-64k:
//! per-query latency for each priority lane, plus a full closed-loop
//! mixed-traffic replay (the `results/BENCH_engine.json` artifact).
//!
//! Before timing anything, one replay is verified query-by-query against
//! the sequential oracle — a benchmark of wrong answers is worthless.

use graphbig::engine::traffic::{
    generate_requests, run_mix, sequential_digests, verify_against_oracle,
};
use graphbig::engine::{Engine, EngineConfig, MixSpec, Query};
use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use graphbig::workloads::Workload;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(1 << 16));
    let engine = Engine::new(
        EngineConfig {
            executors: 2,
            pool_threads: 4,
            ..EngineConfig::default()
        },
        csr,
    );
    let spec = MixSpec {
        seed: 42,
        requests: 100,
        clients: 4,
        point_weight: 60,
        traversal_weight: 25,
        analytics_weight: 15,
        deadline_ms: None,
    };

    // Correctness gate: one replay, every completed result bit-compared to
    // the same queries run sequentially.
    let report = run_mix(&engine, &spec);
    let snapshot = engine.store().snapshot();
    let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
    let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
    let checked = verify_against_oracle(&report, &oracle)
        .expect("concurrent replay must match the sequential oracle");
    eprintln!("oracle: {checked} results verified on LDBC-64k");

    let mut r = Runner::new("engine_ldbc64k");
    r.bench("point/degree", || {
        let t = engine.submit(Query::Degree { vertex: 12_345 }).unwrap();
        black_box(t.wait());
    });
    r.bench("point/khop2", || {
        let t = engine
            .submit(Query::KHop {
                source: 4_321,
                hops: 2,
            })
            .unwrap();
        black_box(t.wait());
    });
    r.bench("traversal/bfs", || {
        let t = engine
            .submit(Query::Run {
                workload: Workload::Bfs,
                source: 7,
            })
            .unwrap();
        black_box(t.wait());
    });
    r.bench("analytics/ccomp", || {
        let t = engine
            .submit(Query::Run {
                workload: Workload::CComp,
                source: 0,
            })
            .unwrap();
        black_box(t.wait());
    });
    r.bench("mix/100req_4cli", || {
        black_box(run_mix(&engine, &spec));
    });
    r.finish();
}
