//! Serving-path benchmarks of the concurrent query engine on LDBC-64k:
//! per-query latency for each priority lane, a full closed-loop
//! mixed-traffic replay, and the repeated-hot-request pair that measures
//! what the epoch-keyed result cache buys (the `results/BENCH_engine.json`
//! artifact).
//!
//! The lane benches run with the cache *off* so they keep measuring the
//! kernel path; the `hot/*` benches measure the same hot k-hop query with
//! the cache off and on — the on/off p50 ratio is the cache's headline.
//!
//! Before timing anything, replays are verified query-by-query against
//! the sequential oracle — in both cache modes, because a benchmark of
//! wrong answers is worthless.

use graphbig::engine::traffic::{
    generate_requests, run_mix, sequential_digests, verify_against_oracle,
};
use graphbig::engine::{Engine, EngineConfig, MixSpec, Query};
use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use graphbig::workloads::Workload;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(1 << 16));
    let engine = Engine::new(
        EngineConfig {
            executors: 2,
            pool_threads: 4,
            cache_capacity: 0, // lane benches time the kernel path
            ..EngineConfig::default()
        },
        csr.clone(),
    );
    let cached = Engine::new(
        EngineConfig {
            executors: 2,
            pool_threads: 4,
            ..EngineConfig::default()
        },
        csr,
    );
    let spec = MixSpec {
        seed: 42,
        requests: 100,
        clients: 4,
        point_weight: 60,
        traversal_weight: 25,
        analytics_weight: 15,
        deadline_ms: None,
        ..MixSpec::default()
    };
    // The repeated-hot-request mix: every source drawn from 4 hot
    // vertices, point-heavy — serving traffic the cache was built for.
    let hot_spec = MixSpec {
        hot_sources: Some(4),
        point_weight: 90,
        traversal_weight: 8,
        analytics_weight: 2,
        ..spec.clone()
    };

    // Correctness gate: one replay per engine/spec pair, every completed
    // result bit-compared to the same queries run sequentially.
    for (eng, s, label) in [
        (&engine, &spec, "uniform cache-off"),
        (&engine, &hot_spec, "hot cache-off"),
        (&cached, &hot_spec, "hot cache-on"),
    ] {
        let report = run_mix(eng, s);
        let snapshot = eng.store().snapshot();
        let queries = generate_requests(s, snapshot.graph().num_vertices() as u32);
        let oracle = sequential_digests(snapshot.graph(), eng.pool(), &queries);
        let checked = verify_against_oracle(&report, &oracle)
            .expect("concurrent replay must match the sequential oracle");
        eprintln!("oracle ({label}): {checked} results verified on LDBC-64k");
    }

    let mut r = Runner::new("engine_ldbc64k");
    r.bench("point/degree", || {
        let t = engine.submit(Query::Degree { vertex: 12_345 }).unwrap();
        black_box(t.wait());
    });
    r.bench("point/khop2", || {
        let t = engine
            .submit(Query::KHop {
                source: 4_321,
                hops: 2,
            })
            .unwrap();
        black_box(t.wait());
    });
    r.bench("traversal/bfs", || {
        let t = engine
            .submit(Query::Run {
                workload: Workload::Bfs,
                source: 7,
            })
            .unwrap();
        black_box(t.wait());
    });
    r.bench("analytics/ccomp", || {
        let t = engine
            .submit(Query::Run {
                workload: Workload::CComp,
                source: 0,
            })
            .unwrap();
        black_box(t.wait());
    });
    r.bench("mix/100req_4cli", || {
        black_box(run_mix(&engine, &spec));
    });
    // The cache's headline: the same hot 2-hop point query, cache off vs
    // on. The on-path should be an order of magnitude cheaper once the 4
    // hot entries are resident. Sources sit in the same dense
    // neighborhood as the `point/khop2` bench so the uncached cost is a
    // real 2-hop expansion, not a leaf's empty frontier.
    let hot = [4_321, 4_322, 4_323, 4_324u32];
    let mut i = 0usize;
    r.bench("hot/khop2_cache_off", || {
        let t = engine
            .submit(Query::KHop {
                source: hot[i % hot.len()],
                hops: 2,
            })
            .unwrap();
        i += 1;
        black_box(t.wait());
    });
    let mut j = 0usize;
    r.bench("hot/khop2_cache_on", || {
        let t = cached
            .submit(Query::KHop {
                source: hot[j % hot.len()],
                hops: 2,
            })
            .unwrap();
        j += 1;
        black_box(t.wait());
    });
    r.bench("hot/mix_cache_off", || {
        black_box(run_mix(&engine, &hot_spec));
    });
    r.bench("hot/mix_cache_on", || {
        black_box(run_mix(&cached, &hot_spec));
    });
    r.finish();
}
