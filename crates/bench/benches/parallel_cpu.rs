//! Wall-clock benchmarks of the parallel CPU variants against their
//! sequential framework counterparts — the multi-threaded side of the
//! paper's 16-core runs.

use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use graphbig::workloads::parallel;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let g = Dataset::Ldbc.generate_with_vertices(10_000);
    let csr = Csr::from_graph(&g);
    let mut sym = csr.symmetrize();
    sym.sort_adjacency();

    let mut r = Runner::new("parallel");
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        r.bench(&format!("bfs_10k/{threads}"), || {
            black_box(parallel::bfs(&pool, &csr, 0));
        });
    }

    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        r.bench(&format!("tc_10k/{threads}"), || {
            black_box(parallel::tc(&pool, &sym));
        });
    }

    let s = csr.symmetrize();
    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        r.bench(&format!("ccomp_10k/{threads}"), || {
            black_box(parallel::ccomp(&pool, &s));
        });
    }
    r.finish();
}
