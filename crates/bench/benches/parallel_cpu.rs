//! Wall-clock benchmarks of the parallel CPU variants against their
//! sequential framework counterparts — the multi-threaded side of the
//! paper's 16-core runs.
//!
//! Dispatch goes through [`service::run_service`], the same uniform entry
//! point the query engine serves from: one [`ServiceGraph`] precomputes
//! the directed/symmetric CSR views every kernel needs, instead of each
//! bench re-deriving (and re-sorting) its own.

use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use graphbig::runtime::CancelToken;
use graphbig::workloads::service::{self, ServiceGraph};
use graphbig::workloads::Workload;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let g = Dataset::Ldbc.generate_with_vertices(10_000);
    let sg = ServiceGraph::build(Csr::from_graph(&g));
    let never = CancelToken::never();

    let mut r = Runner::new("parallel");
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        r.bench(&format!("bfs_10k/{threads}"), || {
            black_box(service::run_service(Workload::Bfs, &pool, &sg, 0, &never).unwrap());
        });
    }

    for workload in [Workload::Tc, Workload::CComp] {
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            r.bench(&format!("{}_10k/{threads}", workload.short_name()), || {
                black_box(service::run_service(workload, &pool, &sg, 0, &never).unwrap());
            });
        }
    }
    r.finish();
}
