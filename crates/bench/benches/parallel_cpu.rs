//! Wall-clock benchmarks of the parallel CPU variants against their
//! sequential framework counterparts — the multi-threaded side of the
//! paper's 16-core runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use graphbig::workloads::parallel;

fn bench_parallel(c: &mut Criterion) {
    let g = Dataset::Ldbc.generate_with_vertices(10_000);
    let csr = Csr::from_graph(&g);
    let mut sym = csr.symmetrize();
    sym.sort_adjacency();

    let mut group = c.benchmark_group("parallel_bfs_10k");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let pool = ThreadPool::new(t);
            b.iter(|| black_box(parallel::bfs(&pool, &csr, 0)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("parallel_tc_10k");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let pool = ThreadPool::new(t);
            b.iter(|| black_box(parallel::tc(&pool, &sym)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("parallel_ccomp_10k");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let pool = ThreadPool::new(t);
            let s = csr.symmetrize();
            b.iter(|| black_box(parallel::ccomp(&pool, &s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
