//! Wall-clock benchmarks of the SIMT model itself: how fast the simulator
//! replays the 8 GPU workloads (this is simulator throughput, not modeled
//! GPU time — the modeled time is Figure 11's `time ms` column).

use graphbig::framework::csr::Csr;
use graphbig::gpu::registry::{run_gpu_workload, GpuRunParams};
use graphbig::prelude::*;
use graphbig::workloads::Workload;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let g = Dataset::Ldbc.generate_with_vertices(2_000);
    let csr = Csr::from_graph(&g);
    let cfg = GpuConfig::tesla_k40();
    let params = GpuRunParams::default();

    let mut r = Runner::new("simt_ldbc2k");
    for w in Workload::gpu_workloads() {
        r.bench(w.short_name(), || {
            black_box(run_gpu_workload(w, &cfg, &csr, &params));
        });
    }
    r.finish();
}
