//! Wall-clock benchmarks of the SIMT model itself: how fast the simulator
//! replays the 8 GPU workloads (this is simulator throughput, not modeled
//! GPU time — the modeled time is Figure 11's `time ms` column).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphbig::framework::csr::Csr;
use graphbig::gpu::registry::{run_gpu_workload, GpuRunParams};
use graphbig::prelude::*;
use graphbig::workloads::Workload;

fn bench_gpu_model(c: &mut Criterion) {
    let g = Dataset::Ldbc.generate_with_vertices(2_000);
    let csr = Csr::from_graph(&g);
    let cfg = GpuConfig::tesla_k40();
    let params = GpuRunParams::default();

    let mut group = c.benchmark_group("simt_ldbc2k");
    group.sample_size(10);
    for w in Workload::gpu_workloads() {
        group.bench_function(w.short_name(), |b| {
            b.iter(|| black_box(run_gpu_workload(w, &cfg, &csr, &params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gpu_model);
criterion_main!(benches);
