//! Wall-clock benchmarks of the traversal workloads (BFS, DFS, SPath) on
//! the LDBC dataset — the paper's Table 4 "graph traversal" category.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphbig::prelude::*;
use graphbig::workloads::{bfs, dfs, spath};

fn bench_traversal(c: &mut Criterion) {
    for n in [2_000usize, 10_000] {
        let base = Dataset::Ldbc.generate_with_vertices(n);
        let arcs = base.num_arcs() as u64;
        let mut group = c.benchmark_group("traversal");
        group.throughput(Throughput::Elements(arcs));
        group.sample_size(20);

        group.bench_with_input(BenchmarkId::new("bfs", n), &n, |b, _| {
            b.iter_batched(
                || base_clone(&base),
                |mut g| black_box(bfs::run(&mut g, 0)),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("dfs", n), &n, |b, _| {
            b.iter_batched(
                || base_clone(&base),
                |mut g| black_box(dfs::run(&mut g, 0)),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("spath", n), &n, |b, _| {
            b.iter_batched(
                || base_clone(&base),
                |mut g| black_box(spath::run(&mut g, 0)),
                criterion::BatchSize::LargeInput,
            )
        });
        group.finish();
    }
}

fn base_clone(g: &PropertyGraph) -> PropertyGraph {
    let mut out = PropertyGraph::with_capacity(g.num_vertices());
    for &id in g.vertex_ids() {
        out.add_vertex_with_id(id).unwrap();
    }
    for (u, e) in g.arcs() {
        out.add_edge(u, e.target, e.weight).unwrap();
    }
    out
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
