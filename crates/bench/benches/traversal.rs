//! Wall-clock benchmarks of the traversal workloads (BFS, DFS, SPath) on
//! the LDBC dataset — the paper's Table 4 "graph traversal" category.

use graphbig::prelude::*;
use graphbig::workloads::{bfs, dfs, spath};
use graphbig_bench::harness::clone_graph;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let mut r = Runner::new("traversal");
    for n in [2_000usize, 10_000] {
        let base = Dataset::Ldbc.generate_with_vertices(n);

        r.bench_with_setup(
            &format!("bfs/{n}"),
            || clone_graph(&base),
            |mut g| black_box(bfs::run(&mut g, 0)),
        );
        r.bench_with_setup(
            &format!("dfs/{n}"),
            || clone_graph(&base),
            |mut g| black_box(dfs::run(&mut g, 0)),
        );
        r.bench_with_setup(
            &format!("spath/{n}"),
            || clone_graph(&base),
            |mut g| black_box(spath::run(&mut g, 0)),
        );
    }
    r.finish();
}
