//! Wall-clock benchmarks of the analytics and social-analysis workloads
//! (kCore, CComp, GColor, TC, Gibbs, DCentr, BCentr).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphbig::datagen::bayes::{self, BayesConfig};
use graphbig::prelude::*;
use graphbig::workloads::{bcentr, ccomp, dcentr, gcolor, gibbs, kcore, tc};

fn clone_graph(g: &PropertyGraph) -> PropertyGraph {
    let mut out = PropertyGraph::with_capacity(g.num_vertices());
    for &id in g.vertex_ids() {
        out.add_vertex_with_id(id).unwrap();
    }
    for (u, e) in g.arcs() {
        out.add_edge(u, e.target, e.weight).unwrap();
    }
    out
}

fn bench_analytics(c: &mut Criterion) {
    let base = Dataset::Ldbc.generate_with_vertices(4_000);
    let mut group = c.benchmark_group("analytics_ldbc4k");
    group.sample_size(10);

    macro_rules! wl {
        ($name:literal, $f:expr) => {
            group.bench_function($name, |b| {
                b.iter_batched(|| clone_graph(&base), $f, criterion::BatchSize::LargeInput)
            });
        };
    }
    wl!("kcore", |mut g| black_box(kcore::run(&mut g)));
    wl!("ccomp", |mut g| black_box(ccomp::run(&mut g)));
    wl!("gcolor", |mut g| black_box(gcolor::run(&mut g)));
    wl!("tc", |mut g| black_box(tc::run(&mut g)));
    wl!("dcentr", |mut g| black_box(dcentr::run(&mut g)));
    wl!("bcentr_8src", |mut g| black_box(bcentr::run(&mut g, 8)));
    group.finish();

    let mut group = c.benchmark_group("gibbs_munin");
    group.sample_size(10);
    group.bench_function("gibbs_3_sweeps", |b| {
        b.iter_batched(
            || bayes::generate(&BayesConfig::munin_like()),
            |mut net| black_box(gibbs::run(&mut net, 3, 7)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_analytics);
criterion_main!(benches);
