//! Wall-clock benchmarks of the analytics and social-analysis workloads
//! (kCore, CComp, GColor, TC, Gibbs, DCentr, BCentr).

use graphbig::datagen::bayes::{self, BayesConfig};
use graphbig::prelude::*;
use graphbig::workloads::{bcentr, ccomp, dcentr, gcolor, gibbs, kcore, tc};
use graphbig_bench::harness::clone_graph;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let base = Dataset::Ldbc.generate_with_vertices(4_000);
    let mut r = Runner::new("analytics_ldbc4k");

    macro_rules! wl {
        ($name:literal, $f:expr) => {
            r.bench_with_setup($name, || clone_graph(&base), $f);
        };
    }
    wl!("kcore", |mut g| black_box(kcore::run(&mut g)));
    wl!("ccomp", |mut g| black_box(ccomp::run(&mut g)));
    wl!("gcolor", |mut g| black_box(gcolor::run(&mut g)));
    wl!("tc", |mut g| black_box(tc::run(&mut g)));
    wl!("dcentr", |mut g| black_box(dcentr::run(&mut g)));
    wl!("bcentr_8src", |mut g| black_box(bcentr::run(&mut g, 8)));

    r.bench_with_setup(
        "gibbs_3_sweeps",
        || bayes::generate(&BayesConfig::munin_like()),
        |mut net| black_box(gibbs::run(&mut net, 3, 7)),
    );
    r.finish();
}
