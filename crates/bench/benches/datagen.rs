//! Wall-clock benchmarks of the dataset generators (Table 5/7 families).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use graphbig::datagen::bayes::{self, BayesConfig};
use graphbig::prelude::*;

fn bench_generators(c: &mut Criterion) {
    let n = 10_000usize;
    let mut group = c.benchmark_group("datagen_10k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for d in Dataset::ALL {
        group.bench_function(d.short_name(), |b| {
            b.iter(|| black_box(d.generate_with_vertices(n)))
        });
    }
    group.bench_function("munin_bayes_net", |b| {
        b.iter(|| black_box(bayes::generate(&BayesConfig::munin_like())))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
