//! Wall-clock benchmarks of the dataset generators (Table 5/7 families).

use graphbig::datagen::bayes::{self, BayesConfig};
use graphbig::prelude::*;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let n = 10_000usize;
    let mut r = Runner::new("datagen_10k");
    for d in Dataset::ALL {
        r.bench(d.short_name(), || {
            black_box(d.generate_with_vertices(n));
        });
    }
    r.bench("munin_bayes_net", || {
        black_box(bayes::generate(&BayesConfig::munin_like()));
    });
    r.finish();
}
