//! Wall-clock benchmarks of the framework primitives — the elementary
//! operations that Figure 1 shows dominating execution time.

use graphbig::prelude::*;
use graphbig_bench::timing::{black_box, Runner};

fn build_graph(n: u64) -> PropertyGraph {
    let mut g = PropertyGraph::with_capacity(n as usize);
    for _ in 0..n {
        g.add_vertex();
    }
    for i in 0..n {
        for j in 1..=8 {
            g.add_edge(i, (i * 7 + j * 131) % n, 1.0).unwrap();
        }
    }
    g
}

fn main() {
    let n = 10_000u64;
    let g = build_graph(n);
    let mut r = Runner::new("framework");

    let mut i = 0u64;
    r.bench("find_vertex", || {
        i = (i * 2654435761 + 1) % n;
        black_box(g.find_vertex(black_box(i)));
    });

    let mut i = 0u64;
    r.bench("has_edge", || {
        i = (i * 2654435761 + 1) % n;
        black_box(g.has_edge(black_box(i), black_box((i + 3) % n)));
    });

    let mut i = 0u64;
    r.bench("neighbor_scan", || {
        i = (i * 2654435761 + 1) % n;
        let mut sum = 0u64;
        for e in g.neighbors(i) {
            sum = sum.wrapping_add(e.target);
        }
        black_box(sum);
    });

    let mut small = build_graph(1_000);
    let mut i = 0u64;
    r.bench("add_delete_edge", || {
        i = (i * 48271 + 1) % 1_000;
        let to = (i + 17) % 1_000;
        small.add_edge(i, to, 1.0).unwrap();
        small.delete_edge(i, to).unwrap();
    });

    let mut small = build_graph(1_000);
    let mut i = 0u64;
    r.bench("property_update", || {
        i = (i * 48271 + 1) % 1_000;
        small
            .set_vertex_prop(
                i,
                graphbig::framework::property::keys::STATUS,
                Property::Int(i as i64),
            )
            .unwrap();
    });

    r.bench("csr_from_graph_10k", || {
        black_box(Csr::from_graph(&g));
    });

    r.finish();
}
