//! Wall-clock benchmarks of the framework primitives — the elementary
//! operations that Figure 1 shows dominating execution time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use graphbig::prelude::*;

fn build_graph(n: u64) -> PropertyGraph {
    let mut g = PropertyGraph::with_capacity(n as usize);
    for _ in 0..n {
        g.add_vertex();
    }
    for i in 0..n {
        for j in 1..=8 {
            g.add_edge(i, (i * 7 + j * 131) % n, 1.0).unwrap();
        }
    }
    g
}

fn bench_primitives(c: &mut Criterion) {
    let n = 10_000u64;
    let g = build_graph(n);

    let mut group = c.benchmark_group("framework");
    group.throughput(Throughput::Elements(1));

    group.bench_function("find_vertex", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 2654435761 + 1) % n;
            black_box(g.find_vertex(black_box(i)));
        })
    });

    group.bench_function("has_edge", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 2654435761 + 1) % n;
            black_box(g.has_edge(black_box(i), black_box((i + 3) % n)));
        })
    });

    group.bench_function("neighbor_scan", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 2654435761 + 1) % n;
            let mut sum = 0u64;
            for e in g.neighbors(i) {
                sum = sum.wrapping_add(e.target);
            }
            black_box(sum)
        })
    });

    group.bench_function("add_delete_edge", |b| {
        let mut g = build_graph(1_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 48271 + 1) % 1_000;
            let to = (i + 17) % 1_000;
            g.add_edge(i, to, 1.0).unwrap();
            g.delete_edge(i, to).unwrap();
        })
    });

    group.bench_function("property_update", |b| {
        let mut g = build_graph(1_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 48271 + 1) % 1_000;
            g.set_vertex_prop(
                i,
                graphbig::framework::property::keys::STATUS,
                Property::Int(i as i64),
            )
            .unwrap();
        })
    });

    group.finish();

    let mut group = c.benchmark_group("populate");
    group.bench_function("csr_from_graph_10k", |b| {
        b.iter(|| black_box(Csr::from_graph(&g)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_primitives
}
criterion_main!(benches);
