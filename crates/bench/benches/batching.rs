//! Shared-traversal batching benchmarks: what MS-BFS coalescing buys on a
//! BFS-heavy serving mix (the `results/BENCH_batching.json` artifact).
//!
//! Two engines over the same LDBC-64k snapshot differ only in the batcher:
//! one with the default 64-lane coalescing, one with `batch_max: 1`
//! (coalescing disabled, every traversal runs alone). Both replay the same
//! seeded BFS-heavy mix as an open-loop storm — every request admitted up
//! front, then the clock runs until the last ticket resolves. A deep
//! backlog is the scenario coalescing exists for, and it keeps the
//! measurement about the engine: a closed-loop driver on this one-core
//! host spends as much time in client bookkeeping as in kernels, which
//! caps any engine-side speedup at ~3x no matter how good the batcher is.
//! The kernel-level pair isolates the same effect without the engine
//! around it: 64 direction-optimized runs vs one 64-lane shared pass.
//!
//! Before timing anything, the *batched* storm is verified query-by-query
//! against the sequential oracle — coalesced answers that are fast but
//! wrong would be worthless — and the run asserts the batcher actually
//! engaged (`engine.batch.size` non-empty). The bench exits non-zero
//! unless the batched storm clears the ROADMAP's >=5x throughput target.

use graphbig::engine::traffic::{generate_requests, sequential_digests};
use graphbig::engine::{Engine, EngineConfig, MixSpec, Query, QueryStatus, Ticket};
use graphbig::framework::csr::{BiCsr, Csr};
use graphbig::prelude::*;
use graphbig::telemetry::metrics::Registry;
use graphbig::workloads::msbfs::{msbfs, msbfs_dir_opt};
use graphbig::workloads::parallel;
use graphbig_bench::timing::{black_box, Runner};

/// Submit every read in the mix, then wait for every ticket. Returns the
/// per-request digests (`None` for a non-completed status) so the gate can
/// check the storm against the oracle; timed runs ignore them.
fn storm(engine: &Engine, queries: &[Query], digests: bool) -> Vec<Option<u64>> {
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|&q| engine.submit(q).expect("storm must be admitted in full"))
        .collect();
    tickets
        .into_iter()
        .map(|t| match t.wait().status {
            QueryStatus::Completed(output) => digests.then(|| output.digest()),
            status => panic!("storm request did not complete: {status:?}"),
        })
        .collect()
}

fn main() {
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(1 << 16));
    let reg = Registry::new();
    let config = EngineConfig {
        executors: 1,
        pool_threads: 1, // the bench host is single-core; a wider pool only adds handoff
        cache_capacity: 0, // both engines time the kernel path
        queue_capacity: 1024, // the whole storm queues up front
        // Covers the submit ramp: the first leader waits for the storm to
        // fill its first 64 lanes instead of sailing with five. Later
        // batches fill instantly from the backlog and never sleep.
        batch_window_us: 2000,
        ..EngineConfig::default()
    };
    let batched = Engine::with_registry(config.clone(), csr.clone(), &reg);
    let unbatched = Engine::new(
        EngineConfig {
            batch_max: 1, // coalescing off; otherwise identical
            batch_window_us: 0,
            ..config
        },
        csr.clone(),
    );
    // BFS-heavy: 80% traversals, the remainder point lookups, all queued
    // at once. No analytics — a KCore would serialize both engines
    // identically and measure the analytics kernel, not the batcher.
    let spec = MixSpec {
        seed: 42,
        requests: 640, // 80% of 640 = 512 traversals: eight full 64-lane batches
        point_weight: 20,
        traversal_weight: 80,
        analytics_weight: 0,
        deadline_ms: None,
        ..MixSpec::default()
    };
    let n = batched.store().snapshot().graph().num_vertices() as u32;
    let queries = generate_requests(&spec, n);

    // Correctness gate: every coalesced answer must be bit-identical to
    // the same query run sequentially, and batches must actually form.
    let oracle = sequential_digests(batched.store().snapshot().graph(), batched.pool(), &queries);
    for (eng, label) in [(&batched, "batched"), (&unbatched, "unbatched")] {
        let got = storm(eng, &queries, true);
        assert_eq!(got.len(), oracle.len());
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            assert_eq!(
                g, o,
                "{label} storm answer {i} diverged from the sequential oracle"
            );
        }
        eprintln!(
            "oracle ({label}): {} results verified on LDBC-64k",
            got.len()
        );
    }
    let sizes = reg.histogram("engine.batch.size").snapshot();
    assert!(
        sizes.count >= 1 && sizes.quantile(1.0) >= 2,
        "the batched engine never coalesced anything"
    );
    eprintln!(
        "coalescing: {} batches, mean size {:.1}, p50 {}, max {}",
        sizes.count,
        sizes.sum as f64 / sizes.count as f64,
        sizes.quantile(0.5),
        sizes.quantile(1.0),
    );

    let mut r = Runner::new("batching");
    r.bench("mix/bfs_heavy_storm_unbatched", || {
        black_box(storm(&unbatched, &queries, false));
    });
    r.bench("mix/bfs_heavy_storm_batched", || {
        black_box(storm(&batched, &queries, false));
    });

    // The kernel in isolation: the same 64 sources, one at a time vs one
    // 64-lane pass sharing every frontier expansion. Both directions: the
    // push-only pair isolates the sharing, the dir-opt pair is the fight
    // the engine actually stages (its sequential path is dir-opt too).
    let pool = ThreadPool::new(1);
    let bi = BiCsr::directed(csr.clone());
    let sources: Vec<u32> = (0..64u32).map(|i| (i * 977) % (1 << 16)).collect();
    r.bench("kernel/bfs64_sequential", || {
        for &s in &sources {
            black_box(parallel::bfs(&pool, &csr, s));
        }
    });
    r.bench("kernel/bfs64_msbfs", || {
        black_box(msbfs(&pool, &csr, &sources));
    });
    r.bench("kernel/bfs64_dir_opt_sequential", || {
        for &s in &sources {
            black_box(parallel::bfs_dir_opt(&pool, &bi, s));
        }
    });
    r.bench("kernel/bfs64_msbfs_dir_opt", || {
        black_box(msbfs_dir_opt(&pool, &bi, &sources));
    });

    let sizes = reg.histogram("engine.batch.size").snapshot();
    let exec = reg.histogram("engine.stage_us.exec.traversal").snapshot();
    eprintln!(
        "all runs: {} batches, mean size {:.1}, mean traversal exec {:.0}us over {}",
        sizes.count,
        sizes.sum as f64 / sizes.count.max(1) as f64,
        exec.sum as f64 / exec.count.max(1) as f64,
        exec.count,
    );

    // The headline gate: batched storm throughput >= 5x unbatched.
    let median = |name: &str| {
        r.results()
            .iter()
            .find(|b| b.name.ends_with(name))
            .map(|b| b.median_ns)
    };
    if let (Some(solo), Some(coalesced)) = (
        median("mix/bfs_heavy_storm_unbatched"),
        median("mix/bfs_heavy_storm_batched"),
    ) {
        let speedup = solo / coalesced;
        println!("batching speedup on the BFS-heavy storm: {speedup:.1}x");
        assert!(
            speedup >= 5.0,
            "BFS-heavy storm speedup {speedup:.2}x is below the 5x target"
        );
    }
    r.finish();
}
