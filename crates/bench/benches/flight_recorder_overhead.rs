//! Flight-recorder overhead benchmark: the always-on claim, measured.
//!
//! The flight recorder has no feature gate — every build records lifecycle
//! events into per-thread rings. This bench prices that decision on the
//! heaviest per-event producer: a traced kernel (direction-optimizing BFS
//! over LDBC at 2^16 vertices) whose cancel token carries a request id, so
//! every cooperative cancel check drops a `kernel_step` event.
//!
//! * `recorder_on` — recording (the production default): each event is
//!   four relaxed stores plus a release bump of the ring head.
//! * `recorder_paused` — the runtime gate closed: one relaxed load per
//!   event site, the floor the recording path is compared against.
//!
//! Pass `--assert-overhead-pct=N` to exit non-zero when the median
//! `recorder_on` time exceeds `recorder_paused` by more than N% — CI pins
//! this at 5%. Baseline numbers live in
//! `results/BENCH_flight_recorder.json`.

use graphbig::framework::csr::{BiCsr, Csr};
use graphbig::prelude::*;
use graphbig::runtime::CancelToken;
use graphbig::telemetry::recorder;
use graphbig::workloads::parallel;
use graphbig_bench::timing::{black_box, Runner};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let g = Dataset::Ldbc.generate_with_vertices(1usize << 16);
    let bi = BiCsr::directed(Csr::from_graph(&g));
    let pool = ThreadPool::new(threads);

    let mut r = Runner::new("flight_recorder_overhead_ldbc_64k");

    recorder::resume();
    r.bench("bfs_dir_opt/recorder_on", || {
        let token = CancelToken::new().with_trace_id(recorder::next_request_id());
        black_box(parallel::bfs_dir_opt_cancellable(&pool, &bi, 0, &token).unwrap());
    });

    recorder::pause();
    r.bench("bfs_dir_opt/recorder_paused", || {
        let token = CancelToken::new().with_trace_id(recorder::next_request_id());
        black_box(parallel::bfs_dir_opt_cancellable(&pool, &bi, 0, &token).unwrap());
    });
    recorder::resume();

    let limit: Option<f64> = std::env::args()
        .find_map(|a| a.strip_prefix("--assert-overhead-pct=").map(str::to_owned))
        .and_then(|v| v.parse().ok());
    if let Some(limit) = limit {
        let median = |suffix: &str| {
            r.results()
                .iter()
                .find(|b| b.name.ends_with(suffix))
                .map(|b| b.median_ns)
        };
        match (median("recorder_on"), median("recorder_paused")) {
            (Some(on), Some(paused)) if paused > 0.0 => {
                let pct = (on - paused) / paused * 100.0;
                eprintln!(
                    "flight recorder overhead: {pct:.2}% \
                     (on {on:.0} ns vs paused {paused:.0} ns, limit {limit}%)"
                );
                if pct > limit {
                    eprintln!("error: flight recorder overhead exceeds {limit}%");
                    std::process::exit(1);
                }
            }
            _ => {
                eprintln!("error: --assert-overhead-pct needs both benches (check --filter)");
                std::process::exit(1);
            }
        }
    }
    r.finish();
}
