//! Shared command-line helpers for the figure/table binaries.

/// Parse `--scale <f64>` from argv; `default` otherwise.
///
/// `scale` multiplies each dataset's Table 7 vertex count; 1.0 reproduces
/// the paper's experiment sizes, the defaults in each binary are chosen so
/// the whole suite regenerates in minutes on a laptop.
pub fn scale_arg(default: f64) -> f64 {
    arg_value("--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse `--threads <usize>`; `default` otherwise.
pub fn threads_arg(default: usize) -> usize {
    arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Look up the value following a flag in argv.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Render one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:>w$}  ", w = w));
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_is_right_aligned() {
        let r = row(&["ab".into(), "1.5".into()], &[5, 6]);
        assert_eq!(r, "   ab     1.5");
    }

    #[test]
    fn missing_flag_yields_default() {
        assert_eq!(scale_arg(0.25), 0.25);
        assert_eq!(threads_arg(4), 4);
    }
}
