//! Shared command-line helpers for the figure/table binaries, and the
//! [`Reporter`] every binary funnels its output through.

use graphbig::framework::graph::PropertyGraph;
use graphbig::profile::Table;
use graphbig::telemetry::{self, RunManifest};

/// Deep-copy a property graph (vertices, then arcs with weights).
///
/// The mutating sequential workloads consume their input, so the
/// `bench_with_setup` benches rebuild a fresh graph per sample; this is the
/// one shared copy helper instead of a private clone in every bench file.
pub fn clone_graph(g: &PropertyGraph) -> PropertyGraph {
    let mut out = PropertyGraph::with_capacity(g.num_vertices());
    for &id in g.vertex_ids() {
        out.add_vertex_with_id(id).unwrap();
    }
    for (u, e) in g.arcs() {
        out.add_edge(u, e.target, e.weight).unwrap();
    }
    out
}

/// Parse `--scale <f64>` from argv; `default` otherwise.
///
/// `scale` multiplies each dataset's Table 7 vertex count; 1.0 reproduces
/// the paper's experiment sizes, the defaults in each binary are chosen so
/// the whole suite regenerates in minutes on a laptop.
pub fn scale_arg(default: f64) -> f64 {
    arg_value("--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse `--threads <usize>`; `default` otherwise.
pub fn threads_arg(default: usize) -> usize {
    arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Look up the value following a flag in argv.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare flag is present in argv.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The uniform output funnel of every figure/table binary.
///
/// Construction parses the common flags all binaries share:
///
/// * `--emit <path>` — write the [`RunManifest`] JSON on [`finish`](Self::finish);
/// * `--trace <path>` — write a Chrome `trace_event` JSON of the recorded
///   spans (open in `chrome://tracing` or Perfetto);
/// * `--quiet` — suppress the stdout tables/notes (they still land in the
///   manifest).
///
/// Tables and notes pass through [`table`](Self::table) / [`note`](Self::note)
/// instead of ad-hoc `println!`, so stdout rendering and the manifest stay
/// in sync. `finish` snapshots the global metric registry (populated by the
/// runtime and workloads during the run) and folds the span trace into the
/// manifest before writing anything.
pub struct Reporter {
    manifest: RunManifest,
    emit: Option<String>,
    trace: Option<String>,
    quiet: bool,
}

impl Reporter {
    /// Start reporting for binary `bin`; enables span recording.
    pub fn new(bin: &str) -> Reporter {
        telemetry::enable();
        let mut manifest = RunManifest::new(bin);
        manifest.features = telemetry::compiled_features();
        Reporter {
            manifest,
            emit: arg_value("--emit"),
            trace: arg_value("--trace"),
            quiet: has_flag("--quiet"),
        }
    }

    /// Whether `--quiet` was passed.
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Record a run parameter (`scale`, `seed`, ...).
    pub fn param(&mut self, key: &str, value: impl ToString) {
        self.manifest.param(key, value);
    }

    /// Tag the run as single-workload.
    pub fn workload(&mut self, name: &str) {
        self.manifest.workload = Some(name.to_string());
    }

    /// Tag the run as single-dataset.
    pub fn dataset(&mut self, name: &str) {
        self.manifest.dataset = Some(name.to_string());
    }

    /// Record the worker thread count.
    pub fn threads(&mut self, n: usize) {
        self.manifest.threads = n as u64;
    }

    /// Direct access to the manifest — the sink for
    /// `PerfCounters::export_metrics` / `ThreadPool::export_metrics`.
    pub fn manifest_mut(&mut self) -> &mut RunManifest {
        &mut self.manifest
    }

    /// Record a gauge metric straight into the manifest.
    pub fn gauge(&mut self, name: &str, value: f64) {
        use graphbig::telemetry::MetricSink;
        self.manifest.gauge(name, value);
    }

    /// Record a counter metric straight into the manifest.
    pub fn counter(&mut self, name: &str, value: u64) {
        use graphbig::telemetry::MetricSink;
        self.manifest.counter(name, value);
    }

    /// Render `table` to stdout (unless `--quiet`) and add it to the
    /// manifest.
    pub fn table(&mut self, table: &Table) {
        if !self.quiet {
            println!("{}", table.render());
        }
        self.manifest.tables.push(table.to_data());
    }

    /// Print a remark (unless `--quiet`) and add it to the manifest.
    pub fn note(&mut self, text: &str) {
        if !self.quiet {
            println!("{text}");
        }
        self.manifest.notes.push(text.to_string());
    }

    /// Snapshot metrics and spans, then write the `--trace` / `--emit`
    /// outputs. Exits non-zero if a requested file cannot be written.
    pub fn finish(mut self) {
        for (name, value) in telemetry::metrics::global().snapshot() {
            self.manifest.metrics.entry(name).or_insert(value);
        }
        let trace = telemetry::take_trace();
        self.manifest.absorb_trace(&trace);
        if let Some(path) = &self.trace {
            if let Err(e) = telemetry::chrome::write_chrome_trace(&trace, path) {
                eprintln!("error: cannot write trace to {path}: {e}");
                std::process::exit(1);
            }
            if !self.quiet {
                eprintln!("chrome trace written to {path}");
            }
        }
        if let Some(path) = &self.emit {
            if let Err(e) = self.manifest.write_to(path) {
                eprintln!("error: cannot write manifest to {path}: {e}");
                std::process::exit(1);
            }
            if !self.quiet {
                eprintln!("run manifest written to {path}");
            }
        }
    }
}

/// Render one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:>w$}  ", w = w));
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_is_right_aligned() {
        let r = row(&["ab".into(), "1.5".into()], &[5, 6]);
        assert_eq!(r, "   ab     1.5");
    }

    #[test]
    fn missing_flag_yields_default() {
        assert_eq!(scale_arg(0.25), 0.25);
        assert_eq!(threads_arg(4), 4);
    }
}
