//! The in-tree wall-clock measurement loop: warmup, then `samples` timed
//! batches, summarized as **median ± MAD** (median absolute deviation).
//! This replaces `criterion` for the nine `harness = false` benches so the
//! suite measures itself with zero external crates.
//!
//! The model is deliberately small:
//!
//! * [`Runner::bench`] auto-calibrates a batch size so each timed sample
//!   runs for at least [`TARGET_SAMPLE`] (nanosecond-scale primitives get
//!   thousands of iterations per sample; multi-millisecond workloads get
//!   one), runs one untimed warmup batch, then records per-iteration times
//!   for `samples` batches;
//! * [`Runner::bench_with_setup`] rebuilds fresh input before every timed
//!   call (the `iter_batched` pattern) with setup time excluded;
//! * median/MAD are robust to the occasional scheduler hiccup that would
//!   drag a mean — the same reason criterion reports medians.
//!
//! CLI (everything `cargo bench -- <args>` forwards):
//!
//! * `--filter <substr>` (or a bare argument) — run matching benches only;
//! * `--samples <n>` — override every bench's sample count;
//! * `--emit <path>` — write the results as JSON (the format of
//!   `results/BENCH_*.json`);
//! * `--bench` / `--quiet` — accepted and ignored (cargo passes `--bench`).

use graphbig_json::{json_struct, ObjBuilder, ToJson};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time one timed sample should cover; batches are
/// sized so timer resolution is noise even for nanosecond operations.
pub const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Default number of timed samples per bench.
pub const DEFAULT_SAMPLES: usize = 15;

/// Cap on the calibrated batch size.
const MAX_ITERS: u64 = 10_000_000;

/// Summary statistics of one bench, all in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full bench name (`suite/bench`).
    pub name: String,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Median absolute deviation around the median.
    pub mad_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (1 for setup-per-call benches).
    pub iters: u64,
}

json_struct!(BenchResult {
    name,
    median_ns,
    mad_ns,
    min_ns,
    mean_ns,
    samples,
    iters
});

/// One bench target's runner: collects results, prints a line per bench,
/// and optionally emits JSON on [`finish`](Runner::finish).
pub struct Runner {
    suite: String,
    filter: Option<String>,
    samples: usize,
    emit: Option<String>,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Parse the bench CLI and start a suite.
    pub fn new(suite: &str) -> Runner {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut samples = DEFAULT_SAMPLES;
        let mut emit = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--filter" | "--emit" | "--samples" => {
                    let flag = args[i].clone();
                    i += 1;
                    let Some(v) = args.get(i) else { break };
                    match flag.as_str() {
                        "--filter" => filter = Some(v.clone()),
                        "--emit" => emit = Some(v.clone()),
                        _ => samples = v.parse().unwrap_or(DEFAULT_SAMPLES),
                    }
                }
                a if a.starts_with("--") => {} // --bench, --quiet, ...
                bare => filter = Some(bare.to_string()),
            }
            i += 1;
        }
        Runner {
            suite: suite.to_string(),
            filter,
            samples: samples.max(3),
            emit,
            results: Vec::new(),
        }
    }

    fn full_name(&self, name: &str) -> String {
        format!("{}/{}", self.suite, name)
    }

    fn skipped(&self, full: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !full.contains(f))
    }

    /// Measure `f` with auto-calibrated batching: suitable for anything
    /// from nanosecond primitives to multi-millisecond workloads.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        let full = self.full_name(name);
        if self.skipped(&full) {
            return;
        }
        // calibration pass doubles as the first warmup iteration
        let t = Instant::now();
        f();
        let once = t.elapsed();
        let iters = if once >= TARGET_SAMPLE {
            1
        } else {
            (TARGET_SAMPLE.as_nanos() as u64 / (once.as_nanos() as u64).max(1) + 1).min(MAX_ITERS)
        };
        // one untimed warmup batch
        for _ in 0..iters {
            f();
        }
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(full, per_iter, iters);
    }

    /// Measure `f` on a fresh `setup()` output each sample; setup time is
    /// excluded (the `iter_batched` pattern for consuming/mutating benches).
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        let full = self.full_name(name);
        if self.skipped(&full) {
            return;
        }
        // warmup: one untimed run
        black_box(f(setup()));
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            per_iter.push(t.elapsed().as_nanos() as f64);
        }
        self.record(full, per_iter, 1);
    }

    fn record(&mut self, name: String, mut per_iter: Vec<f64>, iters: u64) {
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = median_sorted(&per_iter);
        let mut devs: Vec<f64> = per_iter.iter().map(|x| (x - median).abs()).collect();
        devs.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            mad_ns: median_sorted(&devs),
            median_ns: median,
            min_ns: per_iter[0],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            samples: per_iter.len(),
            iters,
            name,
        };
        println!(
            "{:<44} median {:>10} \u{b1} {:>8} (MAD)  min {:>10}  [{} samples \u{d7} {} iters]",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.mad_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.iters,
        );
        self.results.push(result);
    }

    /// Print the footer and write `--emit` JSON if requested.
    pub fn finish(self) {
        println!("{}: {} benches measured", self.suite, self.results.len());
        if let Some(path) = &self.emit {
            let doc = ObjBuilder::new()
                .push("suite", self.suite.to_json())
                .push("results", self.results.to_json())
                .build();
            if let Err(e) = std::fs::write(path, doc.to_pretty() + "\n") {
                eprintln!("error: cannot write bench results to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("bench results written to {path}");
        }
    }

    /// The measurements collected so far (used by tests).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Human-readable nanoseconds: `687 ns`, `12.4 µs`, `3.21 ms`, `1.08 s`.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_runner(samples: usize) -> Runner {
        Runner {
            suite: "t".into(),
            filter: None,
            samples,
            emit: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn median_and_mad_are_robust_to_outliers() {
        let mut r = quiet_runner(5);
        r.record("t/x".into(), vec![10.0, 11.0, 12.0, 11.0, 500.0], 1);
        let got = &r.results()[0];
        assert_eq!(got.median_ns, 11.0);
        assert_eq!(got.mad_ns, 1.0);
        assert_eq!(got.min_ns, 10.0);
        assert_eq!(got.samples, 5);
    }

    #[test]
    fn bench_collects_requested_samples() {
        let mut r = quiet_runner(4);
        let mut calls = 0u64;
        r.bench("count", || calls += 1);
        assert_eq!(r.results().len(), 1);
        assert_eq!(r.results()[0].samples, 4);
        // calibration + warmup batch + 4 timed batches all ran the closure
        assert!(calls > 5 * r.results()[0].iters);
    }

    #[test]
    fn setup_variant_passes_fresh_input() {
        let mut r = quiet_runner(3);
        let mut next = 0u64;
        r.bench_with_setup(
            "fresh",
            || {
                next += 1;
                next
            },
            |v| assert!(v > 0),
        );
        assert_eq!(next, 4); // warmup + 3 samples
        assert_eq!(r.results()[0].iters, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut r = quiet_runner(3);
        r.filter = Some("bfs".into());
        r.bench("tc", || {});
        r.bench("bfs_dir_opt", || {});
        assert_eq!(r.results().len(), 1);
        assert_eq!(r.results()[0].name, "t/bfs_dir_opt");
    }

    #[test]
    fn formats_units() {
        assert_eq!(fmt_ns(687.0), "687 ns");
        assert_eq!(fmt_ns(12_400.0), "12.40 \u{b5}s");
        assert_eq!(fmt_ns(3_210_000.0), "3.21 ms");
        assert_eq!(fmt_ns(1_080_000_000.0), "1.08 s");
    }

    #[test]
    fn results_serialize_to_json() {
        let r = BenchResult {
            name: "t/x".into(),
            median_ns: 11.0,
            mad_ns: 1.0,
            min_ns: 10.0,
            mean_ns: 108.8,
            samples: 5,
            iters: 2,
        };
        let s = graphbig_json::to_pretty(&r);
        let back: BenchResult = graphbig_json::from_str(&s).unwrap();
        assert_eq!(back.name, "t/x");
        assert_eq!(back.iters, 2);
    }
}
