//! Shared CPU characterization runner: executes workloads through the
//! machine model and returns the per-workload counter sets that Figures
//! 5–9 tabulate.

use graphbig::framework::trace::TeeTracer;
use graphbig::framework::trace::{CountingTracer, Tracer};
use graphbig::machine::{CoreModel, CpuConfig, PerfCounters};
use graphbig::prelude::*;
use graphbig::workloads::harness::{run_traced, RunParams};
use graphbig::workloads::Workload;

/// One workload's profiling result.
pub struct CpuProfile {
    /// The workload.
    pub workload: Workload,
    /// Machine-model counters.
    pub counters: PerfCounters,
    /// Instruction-level framework/user split (Figure 1).
    pub counting: CountingTracer,
    /// Headline algorithm result.
    pub outcome: String,
}

/// Run one workload on one dataset at `scale` through the machine model.
pub fn profile_workload(
    w: Workload,
    dataset: Dataset,
    scale: f64,
    params: &RunParams,
) -> CpuProfile {
    let mut g = dataset.generate(scale);
    profile_on_graph(w, &mut g, params)
}

/// Run one workload on a pre-generated graph through the machine model.
pub fn profile_on_graph(w: Workload, g: &mut PropertyGraph, params: &RunParams) -> CpuProfile {
    let mut tee = TeeTracer::new(CountingTracer::new(), CoreModel::new(CpuConfig::xeon_e5()));
    let outcome = run_traced(w, g, params, &mut tee);
    CpuProfile {
        workload: w,
        counters: tee.b.finish(),
        counting: tee.a,
        outcome: outcome.description,
    }
}

/// Profile every CPU workload on the LDBC dataset (the paper's Figures 5–8
/// methodology: "the LDBC graph with 1 million vertices is selected",
/// scaled here by `scale`).
pub fn profile_suite(scale: f64, params: &RunParams) -> Vec<CpuProfile> {
    Workload::ALL
        .iter()
        .map(|&w| {
            eprintln!("  profiling {w} ...");
            profile_workload(w, Dataset::Ldbc, scale, params)
        })
        .collect()
}

/// Default run parameters for figure binaries: Gibbs network scaled with
/// the dataset so CompProp work stays proportionate.
pub fn figure_params(_scale: f64) -> RunParams {
    RunParams {
        // MUNIN's ~1 MB footprint is tiny relative to the paper machine's
        // TLB/cache reach; at our scaled-down machine the equivalent
        // relation needs a scaled network (see EXPERIMENTS.md).
        gibbs_scale: 0.1,
        gibbs_sweeps: 40,
        bcentr_sources: 8,
        ..RunParams::default()
    }
}

/// The workloads Figure 9 sweeps across datasets (the paper "excluded the
/// workloads that cannot take all input datasets" — Gibbs needs a Bayesian
/// network; the dynamic workloads rebuild/destroy rather than analyze).
pub fn dataset_portable_workloads() -> Vec<Workload> {
    vec![
        Workload::Bfs,
        Workload::Dfs,
        Workload::SPath,
        Workload::KCore,
        Workload::CComp,
        Workload::GColor,
        Workload::Tc,
        Workload::DCentr,
        Workload::BCentr,
    ]
}

/// Dummy Tracer impl check (compile-time): TeeTracer of counting+core is a
/// Tracer.
#[allow(dead_code)]
fn _assert_tracer<T: Tracer>() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_produces_nonzero_counters() {
        let p = profile_workload(Workload::Bfs, Dataset::Ldbc, 0.0005, &RunParams::default());
        assert!(p.counters.instructions > 1000);
        assert!(p.counters.total_cycles() > 0.0);
        assert!(p.counting.framework_fraction() > 0.0);
        assert!(!p.outcome.is_empty());
    }

    #[test]
    fn suite_covers_all_workloads() {
        let params = RunParams {
            gibbs_scale: 0.05,
            gibbs_sweeps: 1,
            ..RunParams::default()
        };
        let profiles = profile_suite(0.0003, &params);
        assert_eq!(profiles.len(), 13);
        for p in &profiles {
            assert!(p.counters.instructions > 0, "{} traced nothing", p.workload);
        }
    }
}
