//! Shared GPU characterization runner for Figures 10–13.

use graphbig::datagen::Dataset;
use graphbig::framework::csr::Csr;
use graphbig::gpu::registry::{run_gpu_workload, GpuRunParams, GpuRunResult};
use graphbig::simt::GpuConfig;
use graphbig::workloads::Workload;

/// Run one GPU workload on one dataset at `scale`.
///
/// The device L2 is scaled with the dataset (see
/// `GpuConfig::tesla_k40_scaled`) so that state arrays that exceed the K40's
/// 1.5 MB L2 at the paper's sizes also exceed it here.
pub fn profile_gpu_workload(w: Workload, dataset: Dataset, scale: f64) -> GpuRunResult {
    let g = dataset.generate(scale);
    let csr = Csr::from_graph(&g);
    let cfg = GpuConfig::tesla_k40_scaled(scale);
    run_gpu_workload(w, &cfg, &csr, &GpuRunParams::default())
}

/// Run all 8 GPU workloads on one dataset.
pub fn profile_gpu_suite(dataset: Dataset, scale: f64) -> Vec<GpuRunResult> {
    let g = dataset.generate(scale);
    let csr = Csr::from_graph(&g);
    let cfg = GpuConfig::tesla_k40_scaled(scale);
    Workload::gpu_workloads()
        .into_iter()
        .map(|w| {
            eprintln!("  gpu {w} on {dataset} ...");
            run_gpu_workload(w, &cfg, &csr, &GpuRunParams::default())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_profile_runs() {
        let r = profile_gpu_workload(Workload::Bfs, Dataset::Ldbc, 0.0003);
        assert!(r.metrics.issued_instructions > 0);
        assert!((0.0..=1.0).contains(&r.metrics.bdr));
    }
}
