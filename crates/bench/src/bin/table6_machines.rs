//! Table 6: the modeled test machines (CPU and GPU).
//!
//! Usage: `table6_machines [--emit <path>] [--quiet]`

use graphbig::machine::CpuConfig;
use graphbig::profile::Table;
use graphbig::simt::GpuConfig;
use graphbig_bench::harness::Reporter;

fn main() {
    let mut rep = Reporter::new("table6_machines");
    let cpu = CpuConfig::xeon_e5();
    let mut t = Table::new("Table 6: modeled CPU", &["parameter", "value"]);
    t.row(vec!["model".into(), cpu.name.clone()]);
    t.row(vec!["cores".into(), cpu.cores.to_string()]);
    t.row(vec![
        "frequency".into(),
        format!("{} GHz", cpu.frequency_ghz),
    ]);
    t.row(vec!["issue width".into(), cpu.issue_width.to_string()]);
    t.row(vec![
        "L1D".into(),
        format!("{} KB / {}-way", cpu.l1d.size_bytes / 1024, cpu.l1d.ways),
    ]);
    t.row(vec![
        "L2".into(),
        format!("{} KB / {}-way", cpu.l2.size_bytes / 1024, cpu.l2.ways),
    ]);
    t.row(vec![
        "L3".into(),
        format!(
            "{} MB / {}-way",
            cpu.l3.size_bytes / 1024 / 1024,
            cpu.l3.ways
        ),
    ]);
    t.row(vec![
        "ICache".into(),
        format!(
            "{} KB / {}-way",
            cpu.icache.size_bytes / 1024,
            cpu.icache.ways
        ),
    ]);
    t.row(vec![
        "DTLB".into(),
        format!("{} + {} entries", cpu.tlb.l1_entries, cpu.tlb.l2_entries),
    ]);
    t.row(vec![
        "memory latency".into(),
        format!("{} cycles", cpu.mem_latency),
    ]);
    rep.table(&t);

    let gpu = GpuConfig::tesla_k40();
    let mut g = Table::new("Table 6: modeled GPU", &["parameter", "value"]);
    g.row(vec!["model".into(), gpu.name.clone()]);
    g.row(vec!["SMs".into(), gpu.sms.to_string()]);
    g.row(vec!["warp size".into(), gpu.warp_size.to_string()]);
    g.row(vec!["clock".into(), format!("{} GHz", gpu.clock_ghz)]);
    g.row(vec![
        "peak bandwidth".into(),
        format!("{} GB/s", gpu.peak_bandwidth_gbps),
    ]);
    g.row(vec![
        "transaction".into(),
        format!("{} B", gpu.transaction_bytes),
    ]);
    g.row(vec![
        "L2".into(),
        format!("{} KB / {}-way", gpu.l2_bytes / 1024, gpu.l2_ways),
    ]);
    rep.table(&g);
    rep.finish();
}
