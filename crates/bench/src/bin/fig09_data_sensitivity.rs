//! Figure 9: CPU data sensitivity — L1D hit rate, DTLB penalty and IPC of
//! the dataset-portable workloads across all five datasets.
//!
//! Paper shape: L1D hit rates stay high everywhere except DCentr; the
//! Twitter graph has the worst DTLB penalty and mostly the lowest IPC;
//! behavior is visibly data-dependent.
//!
//! Usage: `fig09_data_sensitivity [--scale 0.01] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::profile::Table;
use graphbig_bench::cpu_char::{dataset_portable_workloads, figure_params, profile_workload};
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.01);
    let mut rep = Reporter::new("fig09_data_sensitivity");
    rep.param("scale", scale);
    let params = figure_params(scale);
    let mut l1 = Table::new(
        &format!("Figure 9a: L1D hit rate by dataset (scale {scale})"),
        &[
            "workload",
            "twitter",
            "knowledge",
            "watson",
            "roadnet",
            "ldbc",
        ],
    );
    let mut tlb = Table::new(
        &format!("Figure 9b: DTLB penalty %% by dataset (scale {scale})"),
        &[
            "workload",
            "twitter",
            "knowledge",
            "watson",
            "roadnet",
            "ldbc",
        ],
    );
    let mut ipc = Table::new(
        &format!("Figure 9c: IPC by dataset (scale {scale})"),
        &[
            "workload",
            "twitter",
            "knowledge",
            "watson",
            "roadnet",
            "ldbc",
        ],
    );
    for w in dataset_portable_workloads() {
        let mut l1_row = vec![w.short_name().to_string()];
        let mut tlb_row = vec![w.short_name().to_string()];
        let mut ipc_row = vec![w.short_name().to_string()];
        for d in Dataset::ALL {
            eprintln!("  {w} on {d} ...");
            let p = profile_workload(w, d, scale, &params);
            l1_row.push(Table::pct(p.counters.l1d_hit_rate()));
            tlb_row.push(Table::pct(p.counters.dtlb_penalty_fraction()));
            ipc_row.push(Table::f(p.counters.ipc()));
        }
        l1.row(l1_row);
        tlb.row(tlb_row);
        ipc.row(ipc_row);
    }
    rep.table(&l1);
    rep.table(&tlb);
    rep.table(&ipc);
    rep.note(
        "paper shape: high L1D hit rates except DCentr; twitter worst DTLB/IPC in most workloads.",
    );
    rep.finish();
}
