//! Figure 8: average architectural behavior per computation type.
//!
//! Paper shape: CompStruct has the highest MPKI/DTLB penalty and lowest
//! IPC; CompProp the opposite; CompDyn sits between.
//!
//! Usage: `fig08_comptype [--scale 0.03] [--emit <path>] [--quiet]`

use graphbig::framework::ComputationType;
use graphbig::profile::Table;
use graphbig_bench::cpu_char::{figure_params, profile_suite};
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.03);
    let mut rep = Reporter::new("fig08_comptype");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let profiles = profile_suite(scale, &figure_params(scale));
    let mut table = Table::new(
        &format!("Figure 8: average behavior by computation type (LDBC scale {scale})"),
        &["type", "L3 MPKI", "DTLB penalty %", "branch miss %", "IPC"],
    );
    for ct in ComputationType::ALL {
        let group: Vec<_> = profiles
            .iter()
            .filter(|p| p.workload.meta().computation_type == ct)
            .collect();
        let n = group.len() as f64;
        let avg = |f: &dyn Fn(&graphbig::machine::PerfCounters) -> f64| {
            group.iter().map(|p| f(&p.counters)).sum::<f64>() / n
        };
        table.row(vec![
            ct.to_string(),
            Table::f(avg(&|c| c.l3_mpki())),
            Table::pct(avg(&|c| c.dtlb_penalty_fraction())),
            Table::pct(avg(&|c| c.branch_miss_rate())),
            Table::f(avg(&|c| c.ipc())),
        ]);
    }
    rep.table(&table);
    rep.note("paper shape: IPC CompProp > CompDyn > CompStruct; MPKI/DTLB highest for CompStruct.");
    rep.finish();
}
