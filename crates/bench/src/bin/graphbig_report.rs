//! `graphbig-report`: inspect and compare [`RunManifest`] files emitted by
//! the figure/table binaries' `--emit` flag.
//!
//! Three modes:
//!
//! * `graphbig-report <before.json> <after.json>` — metric regression
//!   table: every metric in either manifest, scalarized (histograms by
//!   mean), with the relative change. `--threshold <pct>` makes any change
//!   beyond ±pct% a failure (exit 1) — the CI perf gate.
//! * `graphbig-report --check <golden.json> <candidate.json>` — structure
//!   -only comparison (same bin, metric names/kinds, table count/headers;
//!   values free to differ). Exit 1 listing every mismatch. CI runs this
//!   against a committed golden manifest so schema drift is caught without
//!   pinning timing-dependent numbers. Two values ARE checked: a
//!   candidate whose `chaos.invariants.violations` or `slo.violations`
//!   counter is non-zero fails — schema drift and SLO regressions (a
//!   p999 past its target) are both gate-worthy.
//! * `graphbig-report --show <manifest.json>` — render a manifest back to
//!   human-readable form: header fields, tables, metrics, span summary.
//!
//! Usage: `graphbig-report [--check|--show] <manifest.json> [<manifest.json>] [--threshold <pct>]`

use graphbig::profile::Table;
use graphbig::telemetry::{diff_metrics, structural_mismatches, MetricValue, RunManifest};
use graphbig_bench::harness::arg_value;

fn load(path: &str) -> RunManifest {
    match RunManifest::read_from(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: cannot load manifest {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn fmt_scalar(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(x) if x == x.trunc() && x.abs() < 1e15 => format!("{x:.0}"),
        Some(x) => format!("{x:.4}"),
    }
}

fn show(path: &str) {
    let m = load(path);
    println!("manifest: {path}");
    println!("  bin:      {}", m.bin);
    if let Some(w) = &m.workload {
        println!("  workload: {w}");
    }
    if let Some(d) = &m.dataset {
        println!("  dataset:  {d}");
    }
    println!("  git rev:  {}", m.git_rev);
    println!("  threads:  {}", m.threads);
    if !m.features.is_empty() {
        println!("  features: {}", m.features.join(", "));
    }
    for (k, v) in &m.params {
        println!("  param {k} = {v}");
    }
    println!();
    for data in &m.tables {
        println!("{}", Table::from_data(data).render());
    }
    if !m.metrics.is_empty() {
        let mut t = Table::new("Metrics", &["name", "kind", "value"]);
        for (name, v) in &m.metrics {
            let (kind, shown) = match v {
                MetricValue::Counter(c) => ("counter", c.to_string()),
                MetricValue::Gauge(g) => ("gauge", format!("{g:.4}")),
                MetricValue::Histogram(h) => (
                    "histogram",
                    format!(
                        "n={} mean={:.1} le={}",
                        h.count,
                        h.mean(),
                        h.buckets.last().map(|b| b.0).unwrap_or(0)
                    ),
                ),
            };
            t.row(vec![name.clone(), kind.to_string(), shown]);
        }
        println!("{}", t.render());
    }
    if !m.spans.is_empty() {
        let mut t = Table::new("Span summary", &["span", "count", "total ms"]);
        for s in &m.spans {
            t.row(vec![
                s.name.clone(),
                s.count.to_string(),
                format!("{:.3}", s.total_us as f64 / 1e3),
            ]);
        }
        println!("{}", t.render());
    }
    for n in &m.notes {
        println!("{n}");
    }
}

fn check(golden_path: &str, candidate_path: &str) {
    let golden = load(golden_path);
    let candidate = load(candidate_path);
    let mut problems = structural_mismatches(&golden, &candidate);
    // Values are free to differ structurally — except the chaos invariant
    // verdict, which is pass/fail by construction: a candidate carrying
    // violations is broken no matter how its schema looks.
    if let Some(MetricValue::Counter(v)) = candidate.metrics.get("chaos.invariants.violations") {
        if *v > 0 {
            problems.push(format!(
                "candidate reports {v} chaos invariant violation(s)"
            ));
            for note in &candidate.notes {
                if note.starts_with("chaos invariant violated") {
                    problems.push(format!("  {note}"));
                }
            }
        }
    }
    // Likewise the SLO verdict: a candidate that missed a declared p99 or
    // p999 target is a latency regression, not a schema difference.
    if let Some(MetricValue::Counter(v)) = candidate.metrics.get("slo.violations") {
        if *v > 0 {
            problems.push(format!("candidate reports {v} SLO violation(s)"));
            for note in &candidate.notes {
                if note.starts_with("slo violated") {
                    problems.push(format!("  {note}"));
                }
            }
        }
    }
    if problems.is_empty() {
        println!(
            "ok: {candidate_path} is structurally compatible with {golden_path} \
             ({} metrics, {} tables)",
            golden.metrics.len(),
            golden.tables.len()
        );
        return;
    }
    eprintln!("structural mismatch between {golden_path} and {candidate_path}:");
    for p in &problems {
        eprintln!("  - {p}");
    }
    std::process::exit(1);
}

fn diff(before_path: &str, after_path: &str, threshold_pct: Option<f64>) {
    let before = load(before_path);
    let after = load(after_path);
    let rows = diff_metrics(&before, &after);
    let mut table = Table::new(
        &format!("Metric diff: {before_path} -> {after_path}"),
        &["metric", "before", "after", "change"],
    );
    let mut regressions = 0usize;
    for r in &rows {
        let change = match r.relative_change() {
            Some(c) => {
                if let Some(t) = threshold_pct {
                    if c.abs() * 100.0 > t {
                        regressions += 1;
                    }
                }
                format!("{:+.1}%", c * 100.0)
            }
            None if r.before.is_none() => "added".to_string(),
            None if r.after.is_none() => "removed".to_string(),
            None => "-".to_string(),
        };
        table.row(vec![
            r.name.clone(),
            fmt_scalar(r.before),
            fmt_scalar(r.after),
            change,
        ]);
    }
    println!("{}", table.render());
    if before.bin != after.bin {
        println!(
            "note: comparing different binaries ('{}' vs '{}')",
            before.bin, after.bin
        );
    }
    if let Some(t) = threshold_pct {
        if regressions > 0 {
            eprintln!("{regressions} metric(s) changed by more than {t}%");
            std::process::exit(1);
        }
        println!("all {} metrics within ±{t}%", rows.len());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--threshold" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    match (has("--show"), has("--check"), positional.as_slice()) {
        (true, false, [path]) => show(path),
        (false, true, [golden, candidate]) => check(golden, candidate),
        (false, false, [before, after]) => {
            let threshold = arg_value("--threshold").and_then(|v| v.parse().ok());
            diff(before, after, threshold);
        }
        _ => {
            eprintln!(
                "usage: graphbig-report <before.json> <after.json> [--threshold <pct>]\n\
                 \x20      graphbig-report --check <golden.json> <candidate.json>\n\
                 \x20      graphbig-report --show <manifest.json>"
            );
            std::process::exit(2);
        }
    }
}
