//! Figure 7: L1D/L2/L3 cache MPKI of the CPU workloads on LDBC.
//!
//! Paper anchors: L3 MPKI avg 48.77; DCentr 145.9 and CComp 101.3 highest;
//! CompProp tiny; CompDyn ranges 6.3–27.5 with GCons lowest (immediate
//! reuse after insertion).
//!
//! Usage: `fig07_cache [--scale 0.03] [--emit <path>] [--quiet]`

use graphbig::profile::Table;
use graphbig_bench::cpu_char::{figure_params, profile_suite};
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.03);
    let mut rep = Reporter::new("fig07_cache");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let profiles = profile_suite(scale, &figure_params(scale));
    let mut table = Table::new(
        &format!("Figure 7: cache MPKI (LDBC scale {scale})"),
        &[
            "workload",
            "type",
            "L1D MPKI",
            "L2 MPKI",
            "L3 MPKI",
            "L1D hit %",
        ],
    );
    let mut l3_sum = 0.0;
    for p in &profiles {
        l3_sum += p.counters.l3_mpki();
        table.row(vec![
            p.workload.short_name().to_string(),
            p.workload.meta().computation_type.to_string(),
            Table::f(p.counters.l1d_mpki()),
            Table::f(p.counters.l2_mpki()),
            Table::f(p.counters.l3_mpki()),
            Table::pct(p.counters.l1d_hit_rate()),
        ]);
    }
    table.row(vec![
        "average".into(),
        "".into(),
        "".into(),
        "".into(),
        Table::f(l3_sum / profiles.len() as f64),
        "".into(),
    ]);
    rep.gauge("fig07.l3_mpki.avg", l3_sum / profiles.len() as f64);
    rep.table(&table);
    rep.note("paper anchors: L3 MPKI avg 48.77; DCentr 145.9; CComp 101.3; CompProp lowest; CompDyn 6.3-27.5.");
    rep.finish();
}
