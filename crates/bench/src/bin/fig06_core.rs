//! Figure 6: DTLB penalty, ICache MPKI, and branch miss rate of the CPU
//! workloads on LDBC.
//!
//! Paper anchors: DTLB penalty avg 12.4% (CComp 21.1%, TC 3.9%, Gibbs 1%);
//! ICache MPKI < 0.7 everywhere; branch miss rate < 5% except TC at 10.7%.
//!
//! Usage: `fig06_core [--scale 0.03] [--emit <path>] [--quiet]`

use graphbig::profile::Table;
use graphbig_bench::cpu_char::{figure_params, profile_suite};
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.03);
    let mut rep = Reporter::new("fig06_core");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let profiles = profile_suite(scale, &figure_params(scale));
    let mut table = Table::new(
        &format!("Figure 6: DTLB penalty / ICache MPKI / branch miss (LDBC scale {scale})"),
        &[
            "workload",
            "type",
            "DTLB penalty %",
            "ICache MPKI",
            "branch miss %",
        ],
    );
    let mut dtlb_sum = 0.0;
    for p in &profiles {
        dtlb_sum += p.counters.dtlb_penalty_fraction();
        table.row(vec![
            p.workload.short_name().to_string(),
            p.workload.meta().computation_type.to_string(),
            Table::pct(p.counters.dtlb_penalty_fraction()),
            Table::f3(p.counters.icache_mpki()),
            Table::pct(p.counters.branch_miss_rate()),
        ]);
    }
    table.row(vec![
        "average".into(),
        "".into(),
        Table::pct(dtlb_sum / profiles.len() as f64),
        "".into(),
        "".into(),
    ]);
    rep.gauge("fig06.dtlb_penalty.avg", dtlb_sum / profiles.len() as f64);
    rep.table(&table);
    rep.note("paper anchors: DTLB avg 12.4% (CComp 21.1, TC 3.9, Gibbs 1.0); ICache MPKI < 0.7; branch miss: TC 10.7%, others < 5%.");
    rep.finish();
}
