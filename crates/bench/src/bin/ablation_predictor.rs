//! Ablation: branch-predictor scheme (tournament vs gshare vs bimodal).
//!
//! Validates the modeling choice behind Figure 6: graph traversals take
//! strongly *biased* but noisy branches (most neighbors already visited),
//! which a bimodal component captures and pure history-indexed prediction
//! does not; TC's value-dependent compares defeat all three.
//!
//! Usage: `ablation_predictor [--scale 0.01] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::machine::branch::PredictorKind;
use graphbig::machine::{CoreModel, CpuConfig};
use graphbig::profile::Table;
use graphbig::workloads::harness::{run_traced, RunParams};
use graphbig::workloads::Workload;
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.01);
    let mut rep = Reporter::new("ablation_predictor");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let kinds = [
        ("tournament", PredictorKind::Tournament),
        ("gshare", PredictorKind::Gshare),
        ("bimodal", PredictorKind::Bimodal),
    ];
    let workloads = [
        Workload::Bfs,
        Workload::CComp,
        Workload::Tc,
        Workload::KCore,
    ];
    let mut table = Table::new(
        &format!("Ablation: branch miss rate by predictor (LDBC scale {scale})"),
        &["workload", "tournament", "gshare", "bimodal"],
    );
    for w in workloads {
        let mut row = vec![w.short_name().to_string()];
        for (_, kind) in kinds {
            let mut cfg = CpuConfig::xeon_e5();
            cfg.branch.kind = kind;
            let mut g = Dataset::Ldbc.generate(scale);
            let mut core = CoreModel::new(cfg);
            run_traced(w, &mut g, &RunParams::default(), &mut core);
            row.push(Table::pct(core.finish().branch_miss_rate()));
        }
        table.row(row);
    }
    rep.table(&table);
    rep.note(
        "expected: tournament <= min(gshare, bimodal) everywhere; TC stays high under all three.",
    );
    rep.finish();
}
