//! Figure 1 companion: *which* framework primitives the in-framework time
//! goes to, per workload — the per-region breakdown behind the headline
//! 76% number ("elementary graph operations, such as find-vertex and
//! add-edge ... account for a large portion of the total execution time",
//! Section 1).
//!
//! Usage: `fig01b_primitives [--scale 0.01] [--emit <path>] [--quiet]`

use graphbig::framework::trace::Region;
use graphbig::profile::Table;
use graphbig::workloads::Workload;
use graphbig_bench::cpu_char::{figure_params, profile_workload};
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.01);
    let mut rep = Reporter::new("fig01b_primitives");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let params = figure_params(scale);
    let shown = [
        Region::FindVertex,
        Region::TraverseNeighbors,
        Region::TraverseParents,
        Region::PropertyAccess,
        Region::AddVertex,
        Region::AddEdge,
        Region::DeleteVertex,
        Region::UserCode,
    ];
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend([
        "find",
        "neighbors",
        "parents",
        "props",
        "addV",
        "addE",
        "delV",
        "user",
    ]);
    let mut table = Table::new(
        &format!("Figure 1 companion: instruction share by primitive (LDBC scale {scale})"),
        &headers,
    );
    for w in Workload::ALL {
        let p = profile_workload(w, graphbig::datagen::Dataset::Ldbc, scale, &params);
        let total: u64 = p.counting.region_instructions.iter().sum();
        let mut row = vec![w.short_name().to_string()];
        for r in shown {
            let share = p.counting.region_instructions[r.index()] as f64 / total.max(1) as f64;
            row.push(Table::pct(share));
        }
        table.row(row);
    }
    rep.table(&table);
    rep.note("traversal workloads live in find-vertex/neighbor-scan/property primitives; CompDyn in add/delete.");
    rep.finish();
}
