//! Figure 12: GPU speedup over the 16-core CPU, per shared workload and
//! dataset.
//!
//! Methodology mirrors the paper: in-core computation time only (no data
//! loading/transfer); the CPU runs the dynamic vertex-centric layout, the
//! GPU runs CSR. CPU time is the machine model's cycle total divided over
//! the 16 cores with a parallel-efficiency factor (0.7 — level-synchronous
//! graph kernels do not scale linearly); GPU time is the SIMT model's.
//!
//! Paper shape: GPU wins broadly (CComp up to 121x, ~20x typical); BFS and
//! SPath lower; TC lowest.
//!
//! With `--measured` the CPU side is the *wall-clock* of the real parallel
//! kernels (`workloads::parallel`, BFS direction-optimized) on a
//! `--threads`-wide pool (default 16, the paper's core count) instead of
//! the modeled cycles-over-efficiency estimate; BCentr has no parallel
//! kernel yet and keeps the model.
//!
//! Usage: `fig12_speedup [--scale 0.01] [--measured] [--threads 16] [--emit <path>] [--quiet]`

use std::time::Instant;

use graphbig::datagen::Dataset;
use graphbig::framework::csr::{BiCsr, Csr};
use graphbig::profile::Table;
use graphbig::runtime::{ThreadPool, PAPER_CORES};
use graphbig::workloads::{parallel, Workload};
use graphbig_bench::cpu_char::{figure_params, profile_workload};
use graphbig_bench::gpu_char::profile_gpu_workload;
use graphbig_bench::harness::{scale_arg, threads_arg, Reporter};

/// Parallel efficiency of the 16-core CPU baseline, per workload class.
///
/// The paper's CPU implementations parallelize very differently: label
/// propagation through a shared dynamic graph (CComp's sequential BFS
/// labeling, kCore's ordered peeling) barely scales, while per-vertex
/// scoring (DCentr) and per-edge counting (TC) are embarrassingly
/// parallel. This spread is what produces CComp's 121x headline next to
/// TC's single digits.
fn cpu_parallel_efficiency(w: Workload) -> f64 {
    match w {
        Workload::CComp => 0.07,  // sequential BFS labeling
        Workload::KCore => 0.20,  // ordered peeling, limited parallel slack
        Workload::Bfs => 0.40,    // level-synchronous frontier
        Workload::SPath => 0.40,  // delta-stepping-class scaling
        Workload::GColor => 0.70, // parallel rounds
        Workload::BCentr => 0.85, // independent sources
        Workload::Tc => 0.90,     // independent per-edge counting
        Workload::DCentr => 0.95, // independent per-vertex scoring
        _ => 0.70,
    }
}

/// Wall-clock the real parallel kernel for `w` on `d` at `scale`; `None`
/// when no parallel CPU implementation exists (falls back to the model).
/// Best of two runs — the first warms the allocator and page cache.
fn measured_cpu_seconds(w: Workload, d: Dataset, scale: f64, pool: &ThreadPool) -> Option<f64> {
    let g = d.generate(scale);
    let csr = Csr::from_graph(&g);
    if csr.num_vertices() == 0 {
        return None;
    }
    let run: Box<dyn Fn()> = match w {
        Workload::Bfs => {
            let bi = BiCsr::directed(csr);
            Box::new(move || {
                parallel::bfs_dir_opt(pool, &bi, 0);
            })
        }
        Workload::SPath => Box::new(move || {
            parallel::spath(pool, &csr, 0);
        }),
        Workload::CComp => {
            let sym = csr.symmetrize();
            Box::new(move || {
                parallel::ccomp(pool, &sym);
            })
        }
        Workload::KCore => {
            let sym = csr.symmetrize();
            Box::new(move || {
                parallel::kcore(pool, &sym);
            })
        }
        Workload::GColor => Box::new(move || {
            parallel::gcolor(pool, &csr);
        }),
        Workload::Tc => {
            let mut sym = csr.symmetrize();
            sym.sort_adjacency();
            Box::new(move || {
                parallel::tc(pool, &sym);
            })
        }
        Workload::DCentr => Box::new(move || {
            parallel::dcentr(pool, &csr);
        }),
        _ => return None,
    };
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Some(best)
}

fn main() {
    let scale = scale_arg(0.01);
    let measured = std::env::args().any(|a| a == "--measured");
    let threads = threads_arg(PAPER_CORES);
    let mut rep = Reporter::new("fig12_speedup");
    rep.param("scale", scale);
    rep.param("measured", measured);
    rep.threads(threads);
    let pool = ThreadPool::new(threads);
    let params = figure_params(scale);
    let cpu_cfg = graphbig::machine::CpuConfig::xeon_e5();
    let datasets = Dataset::ALL;
    let title = if measured {
        format!("Figure 12: GPU speedup over measured {threads}-thread CPU (scale {scale})")
    } else {
        format!("Figure 12: GPU speedup over 16-core CPU (scale {scale})")
    };
    let mut table = Table::new(
        &title,
        &[
            "workload",
            "twitter",
            "knowledge",
            "watson",
            "roadnet",
            "ldbc",
        ],
    );
    for w in Workload::gpu_workloads() {
        let mut row = vec![w.short_name().to_string()];
        for d in datasets {
            eprintln!("  {w} on {d} ...");
            let cpu_seconds = match measured {
                true => measured_cpu_seconds(w, d, scale, &pool),
                false => None,
            }
            .unwrap_or_else(|| {
                let cpu = profile_workload(w, d, scale, &params);
                cpu.counters.total_cycles()
                    / (cpu_cfg.frequency_ghz * 1e9)
                    / (cpu_cfg.cores as f64 * cpu_parallel_efficiency(w))
            });
            let gpu = profile_gpu_workload(w, d, scale);
            let gpu_seconds = gpu.metrics.time_ms / 1e3;
            let speedup = if gpu_seconds > 0.0 {
                cpu_seconds / gpu_seconds
            } else {
                0.0
            };
            row.push(format!("{speedup:.1}x"));
        }
        table.row(row);
    }
    rep.table(&table);
    rep.note("paper shape: CComp largest (up to 121x), ~20x typical, TC/BFS/SPath smallest.");
    pool.export_metrics(rep.manifest_mut());
    rep.finish();
}
