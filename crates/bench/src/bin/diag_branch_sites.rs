//! Diagnostic tool: per-site branch misprediction breakdown for one
//! workload (usage: diag_branch_sites [bfs|gibbs|dcentr] [--emit <path>]
//! [--quiet]). Useful when tuning the predictor or a workload instruction
//! mix.
use graphbig::framework::trace::{Region, Tracer};
use graphbig::machine::branch::{BranchConfig, BranchPredictor};
use graphbig::profile::Table;
use graphbig::workloads::harness::{run_traced, RunParams};
use graphbig::workloads::Workload;
use graphbig_bench::harness::Reporter;
use std::collections::HashMap;

struct SiteTracer {
    bp: BranchPredictor,
    per_site: HashMap<usize, (u64, u64)>,
}
impl Tracer for SiteTracer {
    fn branch(&mut self, site: usize, taken: bool) {
        let correct = self.bp.predict_and_train(site, taken);
        let e = self.per_site.entry(site).or_insert((0, 0));
        e.0 += 1;
        if !correct {
            e.1 += 1;
        }
    }
    fn region(&mut self, _r: Region) {}
}

fn main() {
    let w = match std::env::args().nth(1).as_deref() {
        Some("gibbs") => Workload::Gibbs,
        Some("dcentr") => Workload::DCentr,
        _ => Workload::Bfs,
    };
    let mut rep = Reporter::new("diag_branch_sites");
    rep.workload(w.short_name());
    rep.dataset("LDBC");
    let mut g = graphbig::datagen::Dataset::Ldbc.generate_with_vertices(5_000);
    let mut t = SiteTracer {
        bp: BranchPredictor::new(BranchConfig::default()),
        per_site: HashMap::new(),
    };
    run_traced(
        w,
        &mut g,
        &RunParams {
            gibbs_scale: 0.2,
            gibbs_sweeps: 5,
            ..Default::default()
        },
        &mut t,
    );
    let mut v: Vec<_> = t.per_site.into_iter().collect();
    v.sort_by_key(|&(_, (_, m))| std::cmp::Reverse(m));
    let mut table = Table::new(
        &format!("Branch sites by misses ({w})"),
        &["site", "branches", "misses", "miss %"],
    );
    for (site, (n, m)) in v.iter().take(12) {
        table.row(vec![
            site.to_string(),
            n.to_string(),
            m.to_string(),
            Table::pct(*m as f64 / (*n).max(1) as f64),
        ]);
    }
    rep.table(&table);
    rep.finish();
}
