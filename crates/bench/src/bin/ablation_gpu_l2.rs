//! Ablation: the device L2's role in the GPU model.
//!
//! Without an L2, every transaction is DRAM traffic and reuse-heavy kernels
//! (TC's hot forward lists) look memory-bound; with it, the Figure 11
//! contrast between streaming (CComp) and reuse-heavy (TC) kernels appears.
//!
//! Usage: `ablation_gpu_l2 [--scale 0.02] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::framework::csr::Csr;
use graphbig::gpu::registry::{run_gpu_workload, GpuRunParams};
use graphbig::profile::Table;
use graphbig::simt::GpuConfig;
use graphbig::workloads::Workload;
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.02);
    let mut rep = Reporter::new("ablation_gpu_l2");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let g = Dataset::Ldbc.generate(scale);
    let csr = Csr::from_graph(&g);
    let params = GpuRunParams::default();

    let with_l2 = GpuConfig::tesla_k40_scaled(scale);
    let mut no_l2 = with_l2.clone();
    no_l2.l2_bytes = 128; // one block: effectively no reuse capture
    no_l2.name = "K40 without L2 (ablation)".into();

    let mut table = Table::new(
        &format!("Ablation: GPU L2 on/off (LDBC scale {scale})"),
        &[
            "workload",
            "read GB/s (L2)",
            "read GB/s (no L2)",
            "time ms (L2)",
            "time ms (no L2)",
        ],
    );
    for w in [
        Workload::Tc,
        Workload::CComp,
        Workload::Bfs,
        Workload::DCentr,
    ] {
        let a = run_gpu_workload(w, &with_l2, &csr, &params);
        let b = run_gpu_workload(w, &no_l2, &csr, &params);
        table.row(vec![
            w.short_name().to_string(),
            Table::f(a.metrics.read_throughput_gbps),
            Table::f(b.metrics.read_throughput_gbps),
            Table::f3(a.metrics.time_ms),
            Table::f3(b.metrics.time_ms),
        ]);
    }
    rep.table(&table);
    rep.note(
        "expected: TC slows most without L2 (hot-list reuse); streaming kernels change least.",
    );
    rep.finish();
}
