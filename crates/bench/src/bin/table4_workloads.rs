//! Table 4: the GraphBIG workload summary.
//!
//! Usage: `table4_workloads [--emit <path>] [--quiet]`

use graphbig::profile::Table;
use graphbig::workloads::Workload;
use graphbig_bench::harness::Reporter;

fn main() {
    let mut rep = Reporter::new("table4_workloads");
    let mut table = Table::new(
        "Table 4: GraphBIG workload summary",
        &[
            "workload",
            "category",
            "computation type",
            "algorithm",
            "GPU",
        ],
    );
    for w in Workload::ALL {
        let m = w.meta();
        table.row(vec![
            m.short_name.to_string(),
            m.category.name().to_string(),
            m.computation_type.to_string(),
            m.algorithm.to_string(),
            if m.on_gpu { "yes" } else { "no" }.to_string(),
        ]);
    }
    rep.table(&table);
    rep.counter("table4.workloads.cpu", Workload::ALL.len() as u64);
    rep.counter(
        "table4.workloads.gpu",
        Workload::gpu_workloads().len() as u64,
    );
    rep.note(&format!(
        "{} CPU workloads, {} GPU workloads (paper: 12 CPU + Gibbs listed separately; 8 GPU).",
        Workload::ALL.len(),
        Workload::gpu_workloads().len()
    ));
    rep.finish();
}
