//! Table 4: the GraphBIG workload summary.

use graphbig::profile::Table;
use graphbig::workloads::Workload;

fn main() {
    let mut table = Table::new(
        "Table 4: GraphBIG workload summary",
        &[
            "workload",
            "category",
            "computation type",
            "algorithm",
            "GPU",
        ],
    );
    for w in Workload::ALL {
        let m = w.meta();
        table.row(vec![
            m.short_name.to_string(),
            m.category.name().to_string(),
            m.computation_type.to_string(),
            m.algorithm.to_string(),
            if m.on_gpu { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} CPU workloads, {} GPU workloads (paper: 12 CPU + Gibbs listed separately; 8 GPU).",
        Workload::ALL.len(),
        Workload::gpu_workloads().len()
    );
}
