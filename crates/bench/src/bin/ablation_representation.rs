//! Ablation: dynamic vertex-centric representation vs static CSR.
//!
//! Section 2's claim: "the compact format of CSR may bring better locality
//! and lead to better cache performance \[but\] graph computing systems
//! usually utilize vertex-centric structures because of the flexibility
//! requirement". This binary runs the *same* BFS on both representations
//! through the machine model and prints the cache/TLB cost of flexibility.
//!
//! Usage: `ablation_representation [--scale 0.03] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::framework::csr::Csr;
use graphbig::machine::{CoreModel, CpuConfig};
use graphbig::profile::Table;
use graphbig::workloads::bfs;
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.03);
    let mut rep = Reporter::new("ablation_representation");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let mut g = Dataset::Ldbc.generate(scale);
    let csr = Csr::from_graph(&g);
    let root = g.vertex_ids()[0];

    let mut vc_core = CoreModel::new(CpuConfig::xeon_e5());
    let vc = bfs::run_t(&mut g, root, &mut vc_core);
    let vc_counters = vc_core.finish();

    let mut csr_core = CoreModel::new(CpuConfig::xeon_e5());
    let (_, cs) = bfs::run_on_csr_t(&csr, 0, &mut csr_core);
    let csr_counters = csr_core.finish();

    assert_eq!(vc.visited, cs.visited, "both BFS variants must agree");

    let mut table = Table::new(
        &format!("Ablation: BFS on vertex-centric vs CSR (LDBC scale {scale})"),
        &[
            "representation",
            "instructions",
            "L1D MPKI",
            "L3 MPKI",
            "DTLB penalty %",
            "IPC",
            "cycles",
        ],
    );
    for (name, c) in [("vertex-centric", &vc_counters), ("CSR", &csr_counters)] {
        table.row(vec![
            name.to_string(),
            c.instructions.to_string(),
            Table::f(c.l1d_mpki()),
            Table::f(c.l3_mpki()),
            Table::pct(c.dtlb_penalty_fraction()),
            Table::f(c.ipc()),
            format!("{:.0}", c.total_cycles()),
        ]);
    }
    rep.table(&table);
    let ratio = vc_counters.total_cycles() / csr_counters.total_cycles().max(1.0);
    rep.gauge("ablation.representation.flexibility_tax", ratio);
    rep.note(&format!(
        "flexibility tax: the dynamic vertex-centric layout costs {ratio:.1}x the cycles of the static CSR \
         (paper, Section 2: CSR has better locality but supports no structural updates)."
    ));
    rep.finish();
}
