//! Ablation: L3 capacity sweep over one recorded BFS trace.
//!
//! Records the BFS event stream once (trace-driven simulation), then
//! replays it through machine models whose L3 ranges from 1 MB to 64 MB —
//! showing where the working set's knee sits and why the paper's 20 MB L3
//! still misses ("L2 and L3 caches indeed show extremely low hit rates").
//!
//! Usage: `ablation_cache_sweep [--scale 0.01] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::framework::trace::RecordingTracer;
use graphbig::machine::{CoreModel, CpuConfig};
use graphbig::profile::Table;
use graphbig::workloads::bfs;
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.01);
    let mut rep = Reporter::new("ablation_cache_sweep");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let mut g = Dataset::Ldbc.generate(scale);
    let root = g.vertex_ids()[0];

    eprintln!("recording BFS trace ...");
    let mut rec = RecordingTracer::new();
    bfs::run_t(&mut g, root, &mut rec);
    eprintln!("  {} events", rec.events.len());
    rep.counter("ablation.trace.events", rec.events.len() as u64);

    let mut table = Table::new(
        &format!("Ablation: L3 capacity sweep, one BFS trace (LDBC scale {scale})"),
        &["L3 size", "L3 MPKI", "L3 hit %", "IPC"],
    );
    for mb in [1usize, 4, 8, 20, 64] {
        let mut cfg = CpuConfig::xeon_e5();
        cfg.l3.size_bytes = mb * 1024 * 1024;
        let mut core = CoreModel::new(cfg);
        rec.replay(&mut core);
        let c = core.finish();
        table.row(vec![
            format!("{mb} MB"),
            Table::f(c.l3_mpki()),
            Table::pct(c.l3.hit_rate()),
            Table::f(c.ipc()),
        ]);
    }
    rep.table(&table);
    rep.note("expected: MPKI falls monotonically with capacity; the graph's scattered footprint keeps the knee far right.");
    rep.finish();
}
