//! Ablation: what the paper's future-work platform would buy — replaying
//! each workload's measured profile on a modeled near-data-processing unit
//! (Section 6: "we will also extend GraphBIG to other platforms, such as
//! near-data processing (NDP) units").
//!
//! Memory-bound CompStruct workloads should gain; the compute-bound
//! CompProp workloads should not.
//!
//! Usage: `ablation_ndp [--scale 0.02] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::machine::ndp::{self, NdpConfig};
use graphbig::machine::CpuConfig;
use graphbig::profile::Table;
use graphbig::workloads::Workload;
use graphbig_bench::cpu_char::{figure_params, profile_workload};
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.02);
    let mut rep = Reporter::new("ablation_ndp");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let params = figure_params(scale);
    let cpu = CpuConfig::xeon_e5();
    let ndp_cfg = NdpConfig::hmc_class();
    let mut table = Table::new(
        &format!("Ablation: NDP-unit replay of CPU profiles (LDBC scale {scale})"),
        &[
            "workload",
            "type",
            "CPU backend %",
            "NDP memory %",
            "NDP speedup",
        ],
    );
    for w in Workload::ALL {
        let p = profile_workload(w, Dataset::Ldbc, scale, &params);
        let (_, _, _, backend) = p.counters.cycles.fractions();
        let est = ndp::evaluate(&ndp_cfg, &p.counters);
        let speedup = ndp::speedup_vs_cpu(&ndp_cfg, &p.counters, cpu.cores, cpu.frequency_ghz);
        table.row(vec![
            w.short_name().to_string(),
            w.meta().computation_type.to_string(),
            Table::pct(backend),
            Table::pct(est.memory_fraction),
            format!("{speedup:.1}x"),
        ]);
    }
    rep.table(&table);
    rep.note("expected: CompStruct (memory-bound) gains most; CompProp gains least.");
    rep.finish();
}
