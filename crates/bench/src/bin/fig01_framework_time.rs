//! Figure 1: execution time spent inside the framework.
//!
//! The paper profiles typical workloads on the System G framework and finds
//! that on average 76% of execution is in-framework, highest for traversal-
//! based workloads. We measure the instruction-level split between
//! framework primitives and user code.
//!
//! Usage: `fig01_framework_time [--scale 0.03] [--emit <path>] [--quiet]`

use graphbig::profile::Table;
use graphbig::workloads::Workload;
use graphbig_bench::cpu_char::{figure_params, profile_workload};
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.03);
    let mut rep = Reporter::new("fig01_framework_time");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let params = figure_params(scale);
    let mut table = Table::new(
        &format!("Figure 1: in-framework execution time (LDBC scale {scale})"),
        &["workload", "framework %", "user %"],
    );
    let mut sum = 0.0;
    for w in Workload::ALL {
        let p = profile_workload(w, graphbig::datagen::Dataset::Ldbc, scale, &params);
        let f = p.counting.framework_fraction();
        sum += f;
        table.row(vec![
            w.short_name().to_string(),
            Table::pct(f),
            Table::pct(1.0 - f),
        ]);
    }
    let avg = sum / Workload::ALL.len() as f64;
    table.row(vec![
        "average".into(),
        Table::pct(avg),
        Table::pct(1.0 - avg),
    ]);
    rep.gauge("fig01.framework_fraction.avg", avg);
    rep.table(&table);
    rep.note(&format!(
        "paper: average in-framework time 76%; ours: {}",
        Table::pct(avg)
    ));
    rep.finish();
}
