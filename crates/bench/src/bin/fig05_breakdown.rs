//! Figure 5: execution-cycle breakdown (Frontend / BadSpeculation /
//! Retiring / Backend) of the 13 CPU workloads on LDBC, grouped by
//! computation type.
//!
//! Paper shape: backend dominates most workloads (>90% for kCore and GUp);
//! CompProp workloads sit near 50% backend.
//!
//! Usage: `fig05_breakdown [--scale 0.03] [--emit <path>] [--quiet]`

use graphbig::machine::PerfCounters;
use graphbig::profile::Table;
use graphbig_bench::cpu_char::{figure_params, profile_suite};
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.03);
    let mut rep = Reporter::new("fig05_breakdown");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let profiles = profile_suite(scale, &figure_params(scale));
    let mut table = Table::new(
        &format!("Figure 5: execution cycle breakdown (LDBC scale {scale})"),
        &[
            "workload", "type", "retiring", "bad spec", "frontend", "backend",
        ],
    );
    for p in &profiles {
        let (ret, bad, fe, be) = p.counters.cycles.fractions();
        table.row(vec![
            p.workload.short_name().to_string(),
            p.workload.meta().computation_type.to_string(),
            Table::pct(ret),
            Table::pct(bad),
            Table::pct(fe),
            Table::pct(be),
        ]);
    }
    // The manifest carries the suite-wide aggregate counter readout.
    let mut total = PerfCounters::default();
    for p in &profiles {
        total.merge(&p.counters);
    }
    total.export_metrics(rep.manifest_mut());
    rep.table(&table);
    rep.note("paper shape: Backend >90% for kCore/GUp; CompProp ~50% backend.");
    rep.finish();
}
