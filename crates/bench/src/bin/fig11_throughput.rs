//! Figure 11: GPU device-memory throughput and IPC on LDBC.
//!
//! Paper anchors: CComp reads 89.9 GB/s (highest; K40 peak is 288);
//! DCentr 75.2 GB/s but atomics cap its IPC; TC reads only 2.0 GB/s yet
//! posts the highest IPC.
//!
//! Usage: `fig11_throughput [--scale 0.03] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::profile::Table;
use graphbig_bench::gpu_char::profile_gpu_suite;
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.03);
    let mut rep = Reporter::new("fig11_throughput");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let results = profile_gpu_suite(Dataset::Ldbc, scale);
    let mut table = Table::new(
        &format!("Figure 11: GPU memory throughput and IPC (LDBC scale {scale})"),
        &[
            "workload",
            "read GB/s",
            "write GB/s",
            "IPC",
            "atomics",
            "time ms",
        ],
    );
    for r in &results {
        table.row(vec![
            r.workload.short_name().to_string(),
            Table::f(r.metrics.read_throughput_gbps),
            Table::f(r.metrics.write_throughput_gbps),
            Table::f3(r.metrics.ipc),
            r.metrics.atomic_ops.to_string(),
            Table::f3(r.metrics.time_ms),
        ]);
    }
    rep.table(&table);
    rep.note(
        "paper anchors: CComp 89.9 GB/s read (max); DCentr 75.2; TC 2.0 GB/s but highest IPC.",
    );
    rep.finish();
}
