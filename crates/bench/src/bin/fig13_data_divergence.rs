//! Figure 13: GPU branch/memory divergence across all five datasets.
//!
//! Paper shape: edge-centric CComp/TC keep a stable (low) BDR across
//! datasets; kCore's BDR barely moves; BFS/SPath show low BDR on roadnet/
//! watson/knowledge but high on the social graphs; the road network is the
//! least divergent input; LDBC drives the highest MDR for most workloads
//! (its degree imbalance involves many vertices, unlike Twitter's few
//! extreme hubs).
//!
//! Usage: `fig13_data_divergence [--scale 0.01] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::profile::Table;
use graphbig::workloads::Workload;
use graphbig_bench::gpu_char::profile_gpu_workload;
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.01);
    let mut rep = Reporter::new("fig13_data_divergence");
    rep.param("scale", scale);
    let mut bdr = Table::new(
        &format!("Figure 13a: BDR by dataset (scale {scale})"),
        &[
            "workload",
            "twitter",
            "knowledge",
            "watson",
            "roadnet",
            "ldbc",
        ],
    );
    let mut mdr = Table::new(
        &format!("Figure 13b: MDR by dataset (scale {scale})"),
        &[
            "workload",
            "twitter",
            "knowledge",
            "watson",
            "roadnet",
            "ldbc",
        ],
    );
    for w in Workload::gpu_workloads() {
        let mut b_row = vec![w.short_name().to_string()];
        let mut m_row = vec![w.short_name().to_string()];
        for d in Dataset::ALL {
            eprintln!("  {w} on {d} ...");
            let r = profile_gpu_workload(w, d, scale);
            b_row.push(Table::f3(r.metrics.bdr));
            m_row.push(Table::f3(r.metrics.mdr));
        }
        bdr.row(b_row);
        mdr.row(m_row);
    }
    rep.table(&bdr);
    rep.table(&mdr);
    rep.note(
        "paper shape: CComp/TC/kCore stable BDR; roadnet lowest divergence; LDBC highest MDR.",
    );
    rep.finish();
}
