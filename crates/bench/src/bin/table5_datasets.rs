//! Tables 5 and 7: dataset inventory (full-size and experiment sizes), and
//! the measured statistics of this repository's scaled generators.
//!
//! Usage: `table5_datasets [--scale 0.01] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::framework::prelude::GraphStats;
use graphbig::profile::Table;
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let mut t5 = Table::new(
        "Table 5: graph data set summary (paper full sizes)",
        &["data set", "type", "vertices", "edges"],
    );
    for d in Dataset::ALL {
        let s = d.spec();
        t5.row(vec![
            s.name.to_string(),
            s.source.type_label().to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
        ]);
    }
    let mut t7 = Table::new(
        "Table 7: graph data in the experiments (paper sizes)",
        &["data set", "vertices", "edges"],
    );
    for d in Dataset::ALL {
        let s = d.experiment_spec();
        t7.row(vec![
            s.name.to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
        ]);
    }
    let scale = scale_arg(0.01);
    let mut rep = Reporter::new("table5_datasets");
    rep.param("scale", scale);
    rep.table(&t5);
    rep.table(&t7);
    let mut gen = Table::new(
        &format!("Generated datasets at scale {scale}"),
        &[
            "data set",
            "vertices",
            "arcs",
            "avg deg",
            "max deg",
            "degree cv",
        ],
    );
    for d in Dataset::ALL {
        let g = d.generate(scale);
        let s = GraphStats::compute(&g);
        gen.row(vec![
            d.short_name().to_string(),
            s.num_vertices.to_string(),
            s.num_arcs.to_string(),
            Table::f(s.avg_degree),
            s.max_degree.to_string(),
            Table::f(s.degree_cv()),
        ]);
    }
    rep.table(&gen);
    rep.finish();
}
