//! Figure 10: branch vs memory divergence of the 8 GPU workloads on LDBC.
//!
//! Paper shape: kCore lower-left (MDR 0.25, low BDR); DCentr upper-right
//! (MDR 0.87, high BDR); GColor/BCentr branch-heavy; CComp/TC low BDR with
//! memory-side divergence only.
//!
//! Usage: `fig10_divergence [--scale 0.03] [--emit <path>] [--quiet]`

use graphbig::datagen::Dataset;
use graphbig::profile::Table;
use graphbig_bench::gpu_char::profile_gpu_suite;
use graphbig_bench::harness::{scale_arg, Reporter};

fn main() {
    let scale = scale_arg(0.03);
    let mut rep = Reporter::new("fig10_divergence");
    rep.param("scale", scale);
    rep.dataset("LDBC");
    let results = profile_gpu_suite(Dataset::Ldbc, scale);
    let mut table = Table::new(
        &format!("Figure 10: GPU branch/memory divergence (LDBC scale {scale})"),
        &["workload", "BDR", "MDR", "issued", "replayed"],
    );
    for r in &results {
        table.row(vec![
            r.workload.short_name().to_string(),
            Table::f3(r.metrics.bdr),
            Table::f3(r.metrics.mdr),
            r.metrics.issued_instructions.to_string(),
            r.metrics.replayed_instructions.to_string(),
        ]);
    }
    rep.table(&table);
    if !rep.is_quiet() {
        let points: Vec<(f64, f64, &str)> = results
            .iter()
            .map(|r| (r.metrics.mdr, r.metrics.bdr, r.workload.short_name()))
            .collect();
        println!(
            "{}",
            graphbig::profile::report::scatter_plot(&points, 48, 14)
        );
    }
    rep.note("paper shape: kCore low/low; DCentr high/high (MDR 0.87); GColor/BCentr high BDR; CComp/TC low BDR.");
    rep.finish();
}
