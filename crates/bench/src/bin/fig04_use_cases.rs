//! Figure 4: real-world use-case analysis — use-case count per workload
//! (A) and the distribution of the 21 use cases over six categories (B).

use graphbig::profile::Table;
use graphbig::workloads::registry::USE_CASE_CATEGORIES;
use graphbig::workloads::Workload;

fn main() {
    let mut a = Table::new(
        "Figure 4(A): # of use cases (of 21) using each workload",
        &["workload", "use cases", "category", "computation type"],
    );
    for w in Workload::ALL {
        let m = w.meta();
        a.row(vec![
            m.short_name.to_string(),
            m.use_cases.to_string(),
            m.category.name().to_string(),
            m.computation_type.to_string(),
        ]);
    }
    println!("{}", a.render());

    let mut b = Table::new(
        "Figure 4(B): distribution of the 21 use cases over categories",
        &["category", "share"],
    );
    for (name, share) in USE_CASE_CATEGORIES {
        b.row(vec![name.to_string(), Table::pct(share)]);
    }
    println!("{}", b.render());
    println!("paper anchors: BFS used by 10 use cases (most), TC by 4 (least).");
}
