//! Figure 4: real-world use-case analysis — use-case count per workload
//! (A) and the distribution of the 21 use cases over six categories (B).

//! Usage: `fig04_use_cases [--emit <path>] [--quiet]`

use graphbig::profile::Table;
use graphbig::workloads::registry::USE_CASE_CATEGORIES;
use graphbig::workloads::Workload;
use graphbig_bench::harness::Reporter;

fn main() {
    let mut rep = Reporter::new("fig04_use_cases");
    let mut a = Table::new(
        "Figure 4(A): # of use cases (of 21) using each workload",
        &["workload", "use cases", "category", "computation type"],
    );
    for w in Workload::ALL {
        let m = w.meta();
        a.row(vec![
            m.short_name.to_string(),
            m.use_cases.to_string(),
            m.category.name().to_string(),
            m.computation_type.to_string(),
        ]);
    }
    rep.table(&a);

    let mut b = Table::new(
        "Figure 4(B): distribution of the 21 use cases over categories",
        &["category", "share"],
    );
    for (name, share) in USE_CASE_CATEGORIES {
        b.row(vec![name.to_string(), Table::pct(share)]);
    }
    rep.table(&b);
    rep.note("paper anchors: BFS used by 10 use cases (most), TC by 4 (least).");
    rep.finish();
}
