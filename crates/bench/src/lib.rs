//! # graphbig-bench
//!
//! Figure/table regeneration binaries, ablation studies, and the in-tree
//! wall-clock benches (the [`timing`] median ± MAD loop — no criterion).
//! Shared harness helpers live here.
//!
//! ## Binaries (`cargo run --release -p graphbig-bench --bin <name>`)
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig01_framework_time` | Figure 1: in-framework execution time |
//! | `fig01b_primitives` | Figure 1 companion: per-primitive breakdown |
//! | `fig04_use_cases` | Figure 4: use-case analysis |
//! | `fig05_breakdown` | Figure 5: cycle breakdown |
//! | `fig06_core` | Figure 6: DTLB / ICache / branch |
//! | `fig07_cache` | Figure 7: cache MPKI |
//! | `fig08_comptype` | Figure 8: per-computation-type averages |
//! | `fig09_data_sensitivity` | Figure 9: CPU data sensitivity |
//! | `fig10_divergence` | Figure 10: GPU BDR/MDR scatter |
//! | `fig11_throughput` | Figure 11: GPU throughput + IPC |
//! | `fig12_speedup` | Figure 12: GPU vs 16-core CPU |
//! | `fig13_data_divergence` | Figure 13: divergence across datasets |
//! | `table4_workloads`, `table5_datasets`, `table6_machines` | Tables 4–7 |
//! | `ablation_representation` | CSR vs vertex-centric cost |
//! | `ablation_predictor` | tournament vs gshare vs bimodal |
//! | `ablation_gpu_l2` | device L2 on/off |
//! | `ablation_cache_sweep` | L3 capacity sweep over a recorded trace |
//! | `ablation_ndp` | near-data-processing future-work model |
//! | `diag_branch_sites` | per-site branch-miss diagnostic |
//! | `graphbig-report` | diff/inspect/check `--emit` run manifests |
//!
//! All figure binaries accept `--scale <f>` (dataset size as a fraction of
//! the paper's Table 7 experiment sizes) plus the common reporting flags
//! parsed by [`harness::Reporter`]: `--emit <path>` (write a
//! [`RunManifest`](graphbig::telemetry::RunManifest) JSON), `--trace
//! <path>` (write a Chrome `trace_event` JSON of the recorded spans), and
//! `--quiet` (suppress stdout tables; they still land in the manifest).

pub mod cpu_char;
pub mod gpu_char;
pub mod harness;
pub mod timing;
