//! Uniform GPU dispatch: run any of the 8 GPU workloads on a dataset CSR
//! and collect the `nvprof`-style metrics (the glue for Figures 10–13).

use graphbig_framework::coo::Coo;
use graphbig_framework::csr::Csr;
use graphbig_simt::{GpuConfig, GpuMetrics};
use graphbig_workloads::Workload;

use crate::{bcentr, bfs, ccomp, dcentr, gcolor, kcore, spath, tc};

/// Result of one GPU workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuRunResult {
    /// Which workload ran.
    pub workload: Workload,
    /// Device metrics.
    pub metrics: GpuMetrics,
    /// Headline algorithm result (visited, components, triangles, ...).
    pub primary_metric: f64,
}

/// Default parameters for GPU runs.
#[derive(Debug, Clone)]
pub struct GpuRunParams {
    /// BFS/SPath/BCentr source (dense index).
    pub source: u32,
    /// k for the k-core kernel.
    pub k: u32,
    /// Brandes source-sample size.
    pub bcentr_sources: usize,
}

impl Default for GpuRunParams {
    fn default() -> Self {
        GpuRunParams {
            source: 0,
            k: 4,
            bcentr_sources: 4,
        }
    }
}

/// Run `w` (must be one of the 8 GPU workloads) on `csr`.
///
/// The graph-populating step the paper describes — converting the dynamic
/// CPU representation into the CSR/COO device layout — is the caller's
/// `Csr::from_graph`; kernels that need the symmetrized/sorted or COO form
/// derive it here, as the original suite does at load time.
pub fn run_gpu_workload(
    w: Workload,
    cfg: &GpuConfig,
    csr: &Csr,
    params: &GpuRunParams,
) -> GpuRunResult {
    match w {
        Workload::Bfs => {
            let r = bfs::run(cfg, csr, params.source);
            result(w, r.metrics, r.visited as f64)
        }
        Workload::SPath => {
            let r = spath::run(cfg, csr, params.source);
            result(w, r.metrics, r.reached as f64)
        }
        Workload::KCore => {
            let sym = csr.symmetrize();
            let r = kcore::decompose(cfg, &sym);
            result(w, r.metrics, r.degeneracy as f64)
        }
        Workload::CComp => {
            let coo = Coo::from_csr(csr);
            let r = ccomp::run(cfg, &coo);
            result(w, r.metrics, r.components as f64)
        }
        Workload::GColor => {
            let sym = csr.symmetrize();
            let r = gcolor::run(cfg, &sym);
            result(w, r.metrics, r.colors as f64)
        }
        Workload::Tc => {
            let (sym, coo) = tc::prepare(csr);
            let r = tc::run(cfg, &sym, &coo);
            result(w, r.metrics, r.triangles as f64)
        }
        Workload::DCentr => {
            let r = dcentr::run(cfg, csr);
            let max = r.centrality.iter().copied().fold(0.0f64, f64::max);
            result(w, r.metrics, max)
        }
        Workload::BCentr => {
            let r = bcentr::run(cfg, csr, params.bcentr_sources);
            let max = r.centrality.iter().copied().fold(0.0f64, f64::max);
            result(w, r.metrics, max)
        }
        other => panic!("{other} has no GPU implementation (CPU-only workload)"),
    }
}

fn result(workload: Workload, metrics: GpuMetrics, primary_metric: f64) -> GpuRunResult {
    GpuRunResult {
        workload,
        metrics,
        primary_metric,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::Dataset;

    #[test]
    fn all_eight_gpu_workloads_run() {
        let g = Dataset::Ldbc.generate_with_vertices(400);
        let csr = Csr::from_graph(&g);
        let cfg = GpuConfig::tesla_k40();
        for w in Workload::gpu_workloads() {
            let r = run_gpu_workload(w, &cfg, &csr, &GpuRunParams::default());
            assert!(r.metrics.issued_instructions > 0, "{w} issued nothing");
            assert!((0.0..=1.0).contains(&r.metrics.bdr), "{w} bdr");
            assert!((0.0..=1.0).contains(&r.metrics.mdr), "{w} mdr");
        }
    }

    #[test]
    #[should_panic(expected = "no GPU implementation")]
    fn cpu_only_workload_panics() {
        let csr = Csr::from_edges(2, &[(0, 1, 1.0)]);
        run_gpu_workload(
            Workload::Dfs,
            &GpuConfig::tesla_k40(),
            &csr,
            &GpuRunParams::default(),
        );
    }

    #[test]
    fn divergence_contrast_matches_figure10_structure() {
        // the paper's headline GPU contrast: edge-centric kernels (CComp)
        // diverge less than the atomic-heavy thread-centric DCentr
        let g = Dataset::Ldbc.generate_with_vertices(2_000);
        let csr = Csr::from_graph(&g);
        let cfg = GpuConfig::tesla_k40();
        let p = GpuRunParams::default();
        let dcentr = run_gpu_workload(Workload::DCentr, &cfg, &csr, &p);
        let ccomp = run_gpu_workload(Workload::CComp, &cfg, &csr, &p);
        assert!(
            dcentr.metrics.bdr > ccomp.metrics.bdr,
            "DCentr {} vs CComp {}",
            dcentr.metrics.bdr,
            ccomp.metrics.bdr
        );
    }
}
