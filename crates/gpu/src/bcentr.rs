//! GPU betweenness centrality: Brandes with level-synchronous forward BFS
//! and reverse dependency accumulation over compacted per-level worklists,
//! thread-centric with atomic sigma/delta updates — heavy per-edge
//! computation, one of Figure 10's high-BDR workloads.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use graphbig_framework::csr::Csr;
use graphbig_simt::kernel::Device;
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

/// Result of a GPU betweenness run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuBCentrResult {
    /// Accumulated betweenness per dense vertex.
    pub centrality: Vec<f64>,
    /// Sources processed.
    pub sources: u32,
    /// Device metrics.
    pub metrics: GpuMetrics,
}

/// Atomic f64 add via CAS on the bit pattern (GPU `atomicAdd(double)`),
/// recorded as one atomic event by the caller.
fn atomic_f64_add(cell: &AtomicU64, inc: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + inc).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Run Brandes from the first `sources` dense vertices.
pub fn run(cfg: &GpuConfig, csr: &Csr, sources: usize) -> GpuBCentrResult {
    let n = csr.num_vertices();
    let centrality: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mut dev = Device::new(cfg.clone());
    let row = csr.row_offsets();
    let used = sources.min(n);

    for s in 0..used {
        let dist: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
        let sigma: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
        let delta: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
        dist[s].store(0, Ordering::Relaxed);
        sigma[s].store(1f64.to_bits(), Ordering::Relaxed);

        // Forward phase: level-synchronous sigma accumulation over the
        // compacted frontier of each level.
        let mut level_lists: Vec<Vec<u32>> = vec![vec![s as u32]];
        let mut level = 0i64;
        loop {
            let current = level_lists.last().expect("at least the source level");
            if current.is_empty() {
                level_lists.pop();
                break;
            }
            let next = Mutex::new(Vec::<u32>::new());
            let forward = |tid: usize, lane: &mut Lane| {
                lane.load(&current[tid], 4); // coalesced frontier fetch
                let u = current[tid] as usize;
                lane.load(&row[u], 16);
                let my_sigma = f64::from_bits(sigma[u].load(Ordering::Relaxed));
                lane.load(&sigma[u], 8);
                for v_ref in csr.neighbors(u as u32) {
                    lane.branch(true); // per-edge loop
                    lane.load(v_ref, 4);
                    let v = *v_ref as usize;
                    lane.load(&dist[v], 8);
                    let dv = dist[v].load(Ordering::Relaxed);
                    lane.branch(dv == -1);
                    if dv == -1
                        && dist[v]
                            .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        lane.atomic(&dist[v], 8);
                        next.lock().unwrap().push(v as u32);
                    }
                    if dist[v].load(Ordering::Relaxed) == level + 1 {
                        atomic_f64_add(&sigma[v], my_sigma);
                        lane.atomic(&sigma[v], 8);
                    }
                    lane.alu(2);
                }
                lane.branch(false);
            };
            dev.launch(current.len(), &forward);
            let mut next = next.into_inner().unwrap();
            next.sort_unstable();
            level_lists.push(next);
            level += 1;
        }

        // Backward phase: accumulate dependencies level by level, deepest
        // first, over the recorded level lists.
        for lvl in (0..level_lists.len()).rev() {
            let current = &level_lists[lvl];
            let back_level = lvl as i64;
            let backward = |tid: usize, lane: &mut Lane| {
                lane.load(&current[tid], 4);
                let u = current[tid] as usize;
                let my_sigma = f64::from_bits(sigma[u].load(Ordering::Relaxed));
                lane.load(&sigma[u], 8);
                let mut acc = 0.0;
                for v_ref in csr.neighbors(u as u32) {
                    lane.branch(true);
                    lane.load(v_ref, 4);
                    let v = *v_ref as usize;
                    lane.load(&dist[v], 8);
                    let is_succ = dist[v].load(Ordering::Relaxed) == back_level + 1;
                    lane.branch(is_succ);
                    if is_succ {
                        let sv = f64::from_bits(sigma[v].load(Ordering::Relaxed));
                        let dv = f64::from_bits(delta[v].load(Ordering::Relaxed));
                        lane.load(&sigma[v], 8);
                        lane.load(&delta[v], 8);
                        lane.alu(4);
                        if sv > 0.0 {
                            acc += my_sigma / sv * (1.0 + dv);
                        }
                    }
                }
                lane.branch(false);
                if acc != 0.0 {
                    atomic_f64_add(&delta[u], acc);
                    lane.atomic(&delta[u], 8);
                    if u != s {
                        atomic_f64_add(&centrality[u], acc);
                        lane.atomic(&centrality[u], 8);
                    }
                }
            };
            dev.launch(current.len(), &backward);
        }
    }

    GpuBCentrResult {
        centrality: centrality
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .collect(),
        sources: used as u32,
        metrics: dev.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    #[test]
    fn path_middle_vertices_accumulate() {
        // undirected path 0-1-2-3
        let edges = [
            (0u32, 1u32, 1.0f32),
            (1, 0, 1.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 3, 1.0),
            (3, 2, 1.0),
        ];
        let csr = Csr::from_edges(4, &edges);
        let r = run(&cfg(), &csr, 4);
        assert_eq!(r.centrality[1], 4.0);
        assert_eq!(r.centrality[2], 4.0);
        assert_eq!(r.centrality[0], 0.0);
    }

    #[test]
    fn matches_cpu_brandes() {
        let mut g = graphbig_datagen::Dataset::CaRoad.generate_with_vertices(150);
        let csr = Csr::from_graph(&g);
        let gpu = run(&cfg(), &csr, 150);
        graphbig_workloads::bcentr::run(&mut g, usize::MAX);
        for u in 0..csr.num_vertices() {
            let id = csr.id_of(u as u32);
            let cpu = graphbig_workloads::bcentr::centrality_of(&g, id).unwrap();
            assert!(
                (gpu.centrality[u] - cpu).abs() < 1e-6,
                "vertex {id}: {} vs {cpu}",
                gpu.centrality[u]
            );
        }
    }

    #[test]
    fn source_cap_limits_work() {
        let csr = Csr::from_edges(10, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let r = run(&cfg(), &csr, 3);
        assert_eq!(r.sources, 3);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        let r = run(&cfg(), &csr, 5);
        assert!(r.centrality.is_empty());
        assert_eq!(r.sources, 0);
    }
}
