//! # graphbig-gpu
//!
//! The 8 GraphBIG GPU workloads (Table 3's "8 GPU workloads") as SIMT
//! kernels over CSR/COO, executed by the `graphbig-simt` model:
//!
//! * thread-centric (one thread per vertex): [`bfs`], [`spath`], [`kcore`],
//!   [`gcolor`], [`dcentr`], [`bcentr`] — their per-thread work scales with
//!   vertex degree, the source of branch divergence (Figure 10);
//! * edge-centric (one thread per edge): [`ccomp`] (Soman's algorithm),
//!   [`tc`] — balanced per-thread work, hence the low BDR the paper
//!   observes for both.
//!
//! Device state is held in atomic arrays (the GPU's global memory); kernels
//! record every global access with its *real* buffer address so coalescing
//! reflects the actual CSR layout, as on hardware.

#![warn(missing_docs)]

pub mod bcentr;
pub mod bfs;
pub mod ccomp;
pub mod dcentr;
pub mod gcolor;
pub mod kcore;
pub mod registry;
pub mod spath;
pub mod tc;

pub use registry::{run_gpu_workload, GpuRunResult};
