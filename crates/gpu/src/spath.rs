//! GPU shortest path: worklist Bellman-Ford relaxation (the standard GPU
//! SSSP formulation — Dijkstra's priority queue does not map to SIMT).
//!
//! Each round launches one thread per *active* vertex (one whose distance
//! improved last round); threads relax their out-edges with an atomic
//! `fetch_min` on the f32 bit pattern (non-negative floats compare
//! correctly as unsigned integers). Like BFS, per-thread work follows
//! vertex degree.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use graphbig_framework::csr::Csr;
use graphbig_simt::kernel::Device;
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

/// Result of a GPU SSSP run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSPathResult {
    /// Vertices with a finite distance.
    pub reached: u64,
    /// Relaxation rounds executed.
    pub rounds: u32,
    /// Device metrics.
    pub metrics: GpuMetrics,
}

const INF: u32 = f32::INFINITY.to_bits();

/// Run SSSP from dense vertex `source`.
pub fn run(cfg: &GpuConfig, csr: &Csr, source: u32) -> GpuSPathResult {
    let (dist, rounds, metrics) = run_full(cfg, csr, source);
    GpuSPathResult {
        reached: dist.iter().filter(|d| d.is_finite()).count() as u64,
        rounds,
        metrics,
    }
}

/// Run SSSP and return the distance array for validation.
pub fn run_full(cfg: &GpuConfig, csr: &Csr, source: u32) -> (Vec<f32>, u32, GpuMetrics) {
    let n = csr.num_vertices();
    if n == 0 || source as usize >= n {
        return (Vec::new(), 0, GpuMetrics::default());
    }
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    dist[source as usize].store(0f32.to_bits(), Ordering::Relaxed);
    let row = csr.row_offsets();
    let worklist_tail = AtomicU32::new(0);

    let mut dev = Device::new(cfg.clone());
    let mut worklist: Vec<u32> = vec![source];
    let mut rounds = 0u32;
    while !worklist.is_empty() && (rounds as usize) <= n {
        let next = Mutex::new(Vec::<u32>::new());
        let wl = &worklist;
        let kernel = |tid: usize, lane: &mut Lane| {
            lane.load(&wl[tid], 4); // coalesced worklist fetch
            let u = wl[tid] as usize;
            lane.load(&dist[u], 4);
            let du = f32::from_bits(dist[u].load(Ordering::Relaxed));
            lane.load(&row[u], 16);
            let weights = csr.edge_weights(u as u32);
            for (i, v_ref) in csr.neighbors(u as u32).iter().enumerate() {
                lane.branch(true); // per-edge loop
                let v = *v_ref as usize;
                lane.load(v_ref, 4);
                lane.load(&weights[i], 4);
                let cand = (du + weights[i]).to_bits();
                lane.alu(2);
                let old = dist[v].fetch_min(cand, Ordering::Relaxed);
                lane.atomic(&dist[v], 4);
                lane.branch(cand < old);
                if cand < old {
                    lane.atomic(&worklist_tail, 4);
                    next.lock().unwrap().push(v as u32);
                }
            }
            lane.branch(false);
        };
        dev.launch(worklist.len(), &kernel);
        let mut next = next.into_inner().unwrap();
        next.sort_unstable();
        next.dedup();
        worklist = next;
        rounds += 1;
    }
    (
        dist.into_iter()
            .map(|a| f32::from_bits(a.into_inner()))
            .collect(),
        rounds,
        dev.metrics(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    #[test]
    fn distances_match_known_graph() {
        // 0 -1-> 1 -1-> 2, plus 0 -4-> 2
        let csr = Csr::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 4.0)]);
        let (d, _, _) = run_full(&cfg(), &csr, 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
    }

    #[test]
    fn unreachable_stay_infinite() {
        let csr = Csr::from_edges(3, &[(0, 1, 1.0)]);
        let r = run(&cfg(), &csr, 0);
        assert_eq!(r.reached, 2);
    }

    #[test]
    fn float_bits_compare_like_floats() {
        assert!(1.0f32.to_bits() < 2.5f32.to_bits());
        assert!(0.0f32.to_bits() < f32::INFINITY.to_bits());
    }

    #[test]
    fn matches_cpu_dijkstra_on_random_graph() {
        use graphbig_datagen::rng::Rng;
        let mut rng = Rng::seed_from_u64(21);
        let n = 150usize;
        let mut edges = Vec::new();
        for _ in 0..700 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push((u, v, rng.gen_range(0.1f32..3.0)));
            }
        }
        let csr = Csr::from_edges(n, &edges);
        let (gpu_dist, _, _) = run_full(&cfg(), &csr, 0);

        // CPU reference via the framework workload
        let mut g = graphbig_framework::PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex();
        }
        for &(u, v, w) in &edges {
            g.add_edge(u as u64, v as u64, w).unwrap();
        }
        graphbig_workloads::spath::run(&mut g, 0);
        for (u, &gd) in gpu_dist.iter().enumerate() {
            let cpu = graphbig_workloads::spath::distance_of(&g, u as u64);
            match cpu {
                Some(d) => assert!((gd as f64 - d).abs() < 1e-4, "vertex {u}"),
                None => assert!(gd.is_infinite(), "vertex {u}"),
            }
        }
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(run(&cfg(), &csr, 0).reached, 0);
    }
}
