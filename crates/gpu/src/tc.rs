//! GPU triangle counting: edge-centric Schank — one thread per edge
//! intersecting two sorted adjacency lists.
//!
//! Edge partitioning balances warps (low BDR, like CComp), but the kernel
//! is dominated by data-dependent compare branches and per-lane walks of
//! *different* adjacency lists: low memory traffic, highest IPC of the
//! suite, and only ~2 GB/s of reads (Figure 11) — the paper's "special
//! computation type".

use std::sync::atomic::{AtomicU64, Ordering};

use graphbig_framework::coo::Coo;
use graphbig_framework::csr::Csr;
use graphbig_simt::kernel::launch;
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

/// Result of a GPU triangle-count run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuTcResult {
    /// Distinct triangles.
    pub triangles: u64,
    /// Device metrics.
    pub metrics: GpuMetrics,
}

/// Count triangles. `csr` must be the degree-ordered *forward* orientation
/// with sorted adjacency and `coo` its edge expansion (see [`prepare`]):
/// each undirected edge points from its lower-degree endpoint, so forward
/// lists are short and balanced — the standard GPU-TC trick that keeps
/// warp divergence low despite hub vertices.
pub fn run(cfg: &GpuConfig, csr: &Csr, coo: &Coo) -> GpuTcResult {
    let m = coo.num_edges();
    let count = AtomicU64::new(0);
    let kernel = |tid: usize, lane: &mut Lane| {
        lane.load(&coo.src()[tid], 4); // coalesced edge fetch
        lane.load(&coo.dst()[tid], 4);
        let (u, v, _) = coo.edge(tid);
        let (a, b) = (csr.neighbors(u), csr.neighbors(v));
        let (mut i, mut j) = (0usize, 0usize);
        let mut local = 0u64;
        while i < a.len() && j < b.len() {
            lane.load(&a[i], 4);
            lane.load(&b[j], 4);
            let (x, y) = (a[i], b[j]);
            lane.branch(x < y); // data-dependent compare
            lane.alu(6); // predicates, selects, dual pointer updates, bounds
            match x.cmp(&y) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // forward orientation counts each triangle exactly once
                    local += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        if local > 0 {
            count.fetch_add(local, Ordering::Relaxed);
            lane.atomic(&count, 8);
        }
    };
    let stats = launch(cfg, m, &kernel);
    GpuTcResult {
        triangles: count.into_inner(),
        metrics: GpuMetrics::from_stats(cfg, &stats),
    }
}

/// Prepare TC inputs from any CSR: symmetrize, orient each undirected edge
/// from its lower-degree endpoint (ties by index), sort adjacency, expand
/// to COO.
pub fn prepare(csr: &Csr) -> (Csr, Coo) {
    let sym = csr.symmetrize();
    let n = sym.num_vertices();
    let rank = |u: u32| (sym.degree(u), u);
    let mut forward_edges: Vec<(u32, u32, f32)> = Vec::with_capacity(sym.num_edges() / 2);
    for u in 0..n as u32 {
        for &v in sym.neighbors(u) {
            if rank(u) < rank(v) {
                forward_edges.push((u, v, 1.0));
            }
        }
    }
    let mut fwd = Csr::from_edges(n, &forward_edges);
    fwd.sort_adjacency();
    let coo = Coo::from_csr(&fwd);
    (fwd, coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    fn tc_of(n: usize, edges: &[(u32, u32)]) -> u64 {
        let e: Vec<(u32, u32, f32)> = edges.iter().map(|&(a, b)| (a, b, 1.0)).collect();
        let base = Csr::from_edges(n, &e);
        let (sym, coo) = prepare(&base);
        run(&cfg(), &sym, &coo).triangles
    }

    #[test]
    fn counts_single_triangle() {
        assert_eq!(tc_of(3, &[(0, 1), (1, 2), (0, 2)]), 1);
    }

    #[test]
    fn k4_has_four() {
        assert_eq!(
            tc_of(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
            4
        );
    }

    #[test]
    fn square_has_none() {
        assert_eq!(tc_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]), 0);
    }

    #[test]
    fn matches_cpu_tc_on_dataset() {
        let mut g = graphbig_datagen::Dataset::WatsonGene.generate_with_vertices(250);
        let csr = Csr::from_graph(&g);
        let (sym, coo) = prepare(&csr);
        let gpu = run(&cfg(), &sym, &coo);
        let cpu = graphbig_workloads::tc::run(&mut g);
        assert_eq!(gpu.triangles, cpu.triangles);
    }

    #[test]
    fn tc_is_compute_bound_with_low_traffic() {
        let g = graphbig_datagen::Dataset::Ldbc.generate_with_vertices(2_000);
        let csr = Csr::from_graph(&g);
        let (sym, coo) = prepare(&csr);
        let r = run(&cfg(), &sym, &coo);
        // edge-centric: balanced warps; intersections: high IPC profile
        assert!(r.metrics.bdr < 0.5, "bdr {}", r.metrics.bdr);
        assert!(
            r.metrics.read_throughput_gbps < 50.0,
            "TC moves little data: {}",
            r.metrics.read_throughput_gbps
        );
    }
}
