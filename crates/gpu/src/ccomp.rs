//! GPU connected components with Soman's algorithm (Section 4.2's stated
//! GPU implementation): edge-centric hooking over the COO list plus
//! pointer-jumping compression.
//!
//! Edge-centric work assignment gives every thread the same trip count —
//! the reason CComp shows near-zero branch divergence and the suite's
//! highest memory throughput (Figures 10–11): the kernel is pure
//! memory traffic with full warps.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use graphbig_framework::coo::Coo;
use graphbig_simt::kernel::Device;
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

/// Result of a GPU components run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuCCompResult {
    /// Number of components.
    pub components: u64,
    /// Final per-vertex labels.
    pub labels: Vec<u32>,
    /// Hook/jump rounds executed.
    pub rounds: u32,
    /// Device metrics.
    pub metrics: GpuMetrics,
}

/// Run Soman-style hooking + pointer jumping over the COO edge list.
pub fn run(cfg: &GpuConfig, coo: &Coo) -> GpuCCompResult {
    let n = coo.num_vertices();
    let m = coo.num_edges();
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut dev = Device::new(cfg.clone());
    let mut rounds = 0u32;

    if n > 0 {
        loop {
            rounds += 1;
            let hooked = AtomicBool::new(false);
            // Hooking: edge-centric, one thread per edge.
            let hook = |tid: usize, lane: &mut Lane| {
                lane.load(&coo.src()[tid], 4); // coalesced
                lane.load(&coo.dst()[tid], 4); // coalesced
                let (u, v, _) = coo.edge(tid);
                lane.load(&parent[u as usize], 4); // scattered
                lane.load(&parent[v as usize], 4); // scattered
                let pu = parent[u as usize].load(Ordering::Relaxed);
                let pv = parent[v as usize].load(Ordering::Relaxed);
                let differ = pu != pv;
                lane.branch(differ);
                if differ {
                    let (hi, lo) = if pu > pv { (pu, pv) } else { (pv, pu) };
                    lane.atomic(&parent[hi as usize], 4);
                    if parent[hi as usize].fetch_min(lo, Ordering::Relaxed) > lo {
                        hooked.store(true, Ordering::Relaxed);
                    }
                }
            };
            dev.launch(m, &hook);

            // Pointer jumping: vertex-centric until flat.
            loop {
                let jumped = AtomicBool::new(false);
                let jump = |tid: usize, lane: &mut Lane| {
                    lane.load(&parent[tid], 4);
                    let p = parent[tid].load(Ordering::Relaxed);
                    lane.load(&parent[p as usize], 4);
                    let gp = parent[p as usize].load(Ordering::Relaxed);
                    let shrink = gp != p;
                    lane.branch(shrink);
                    if shrink {
                        parent[tid].store(gp, Ordering::Relaxed);
                        lane.store(&parent[tid], 4);
                        jumped.store(true, Ordering::Relaxed);
                    }
                };
                dev.launch(n, &jump);
                if !jumped.load(Ordering::Relaxed) {
                    break;
                }
            }
            if !hooked.load(Ordering::Relaxed) {
                break;
            }
        }
    }

    let labels: Vec<u32> = parent.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let mut distinct = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    GpuCCompResult {
        components: distinct.len() as u64,
        labels,
        rounds,
        metrics: dev.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_framework::csr::Csr;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    fn coo_of(n: usize, edges: &[(u32, u32, f32)]) -> Coo {
        Coo::from_csr(&Csr::from_edges(n, edges))
    }

    #[test]
    fn finds_component_count() {
        // {0,1,2} + {3,4} + {5}
        let coo = coo_of(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let r = run(&cfg(), &coo);
        assert_eq!(r.components, 3);
        assert_eq!(r.labels[0], r.labels[2]);
        assert_ne!(r.labels[0], r.labels[3]);
    }

    #[test]
    fn labels_are_component_minima() {
        let coo = coo_of(4, &[(2, 3, 1.0), (1, 2, 1.0)]);
        let r = run(&cfg(), &coo);
        assert_eq!(r.labels, vec![0, 1, 1, 1]);
    }

    #[test]
    fn direction_is_ignored() {
        // directed edge both ways ends up in the same component
        let coo = coo_of(2, &[(1, 0, 1.0)]);
        let r = run(&cfg(), &coo);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn matches_cpu_components_on_dataset() {
        let mut g = graphbig_datagen::Dataset::CaRoad.generate_with_vertices(300);
        let csr = Csr::from_graph(&g);
        let coo = Coo::from_csr(&csr);
        let gpu = run(&cfg(), &coo);
        let cpu = graphbig_workloads::ccomp::run(&mut g);
        assert_eq!(gpu.components, cpu.components);
    }

    #[test]
    fn edge_centric_bdr_is_low() {
        let mut g = graphbig_datagen::Dataset::Ldbc.generate_with_vertices(2_000);
        let csr = Csr::from_graph(&g);
        let coo = Coo::from_csr(&csr);
        let r = run(&cfg(), &coo);
        assert!(
            r.metrics.bdr < 0.35,
            "edge-centric hooking stays balanced: {}",
            r.metrics.bdr
        );
        let _ = &mut g;
    }

    #[test]
    fn empty_input() {
        let coo = coo_of(0, &[]);
        let r = run(&cfg(), &coo);
        assert_eq!(r.components, 0);
        assert_eq!(r.rounds, 0);
    }
}
