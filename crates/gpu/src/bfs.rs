//! GPU BFS: thread-centric over a compacted frontier queue, one launch per
//! level.
//!
//! Each thread takes one *frontier* vertex (fetched coalesced from the
//! frontier array) and claims its unvisited neighbors with a CAS, appending
//! them to the next frontier through an atomic tail counter. Per-thread
//! work scales with the vertex's degree — the warp imbalance behind BFS's
//! branch divergence on social graphs (Figures 10/13) and its "varying
//! working set size" speedup penalty in Figure 12.

use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};
use std::sync::Mutex;

use graphbig_framework::csr::Csr;
use graphbig_simt::kernel::Device;
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

/// Result of a GPU BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuBfsResult {
    /// Vertices reached.
    pub visited: u64,
    /// Levels executed.
    pub levels: u32,
    /// Final per-vertex levels (-1 = unreached).
    pub level: Vec<i64>,
    /// Device metrics.
    pub metrics: GpuMetrics,
}

/// Run BFS from dense vertex `source`.
pub fn run(cfg: &GpuConfig, csr: &Csr, source: u32) -> GpuBfsResult {
    let n = csr.num_vertices();
    if n == 0 || source as usize >= n {
        return GpuBfsResult {
            visited: 0,
            levels: 0,
            level: Vec::new(),
            metrics: GpuMetrics::default(),
        };
    }
    let levels: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    levels[source as usize].store(0, Ordering::Relaxed);
    let row = csr.row_offsets();
    let queue_tail = AtomicU32::new(0); // modeled device queue counter

    let mut dev = Device::new(cfg.clone());
    let mut frontier: Vec<u32> = vec![source];
    let mut depth = 0i64;
    while !frontier.is_empty() {
        let next = Mutex::new(Vec::<u32>::new());
        let frontier_ref = &frontier;
        let kernel = |tid: usize, lane: &mut Lane| {
            lane.load(&frontier_ref[tid], 4); // coalesced frontier fetch
            let u = frontier_ref[tid] as usize;
            lane.load(&row[u], 16);
            for v_ref in csr.neighbors(u as u32) {
                lane.branch(true); // per-edge loop: trip count = degree
                lane.load(v_ref, 4);
                let v = *v_ref as usize;
                lane.load(&levels[v], 8);
                let unvisited = levels[v].load(Ordering::Relaxed) == -1;
                lane.branch(unvisited);
                if unvisited
                    && levels[v]
                        .compare_exchange(-1, depth + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    lane.atomic(&levels[v], 8);
                    // append to the device frontier queue
                    lane.atomic(&queue_tail, 4);
                    next.lock().unwrap().push(v as u32);
                }
            }
            lane.branch(false); // loop exit
        };
        dev.launch(frontier.len(), &kernel);
        let mut next = next.into_inner().unwrap();
        next.sort_unstable(); // deterministic frontier order
        frontier = next;
        depth += 1;
    }

    let level: Vec<i64> = levels.into_iter().map(|a| a.into_inner()).collect();
    GpuBfsResult {
        visited: level.iter().filter(|&&l| l >= 0).count() as u64,
        levels: depth as u32,
        level,
        metrics: dev.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    fn chain_csr() -> Csr {
        Csr::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])
    }

    #[test]
    fn visits_reachable_vertices() {
        let csr = chain_csr();
        let r = run(&cfg(), &csr, 0);
        assert_eq!(r.visited, 4, "vertex 4 is isolated");
        assert!(r.metrics.issued_instructions > 0);
    }

    #[test]
    fn levels_match_hop_counts() {
        let csr = chain_csr();
        let r = run(&cfg(), &csr, 0);
        assert_eq!(r.level, vec![0, 1, 2, 1, -1]); // 0->3 shortcut wins
    }

    #[test]
    fn empty_graph_is_safe() {
        let csr = Csr::from_edges(0, &[]);
        let r = run(&cfg(), &csr, 0);
        assert_eq!(r.visited, 0);
    }

    #[test]
    fn matches_cpu_bfs_on_dataset() {
        let mut g = graphbig_datagen::Dataset::Ldbc.generate_with_vertices(500);
        let csr = Csr::from_graph(&g);
        let gpu = run(&cfg(), &csr, 0);
        let root = csr.id_of(0);
        let cpu = graphbig_workloads::bfs::run(&mut g, root);
        assert_eq!(gpu.visited, cpu.visited);
        for u in 0..csr.num_vertices() {
            let id = csr.id_of(u as u32);
            let cpu_level = graphbig_workloads::bfs::level_of(&g, id)
                .map(|l| l as i64)
                .unwrap_or(-1);
            assert_eq!(gpu.level[u], cpu_level, "vertex {id}");
        }
    }

    #[test]
    fn degree_imbalance_raises_bdr() {
        // Two trees with identical frontier sizes; only the degree balance
        // of the second level differs.
        let balanced = two_level_tree(|_| 4);
        let skewed = two_level_tree(|i| if i % 16 == 0 { 49 } else { 1 });
        let b = run(&cfg(), &balanced, 0).metrics.bdr;
        let s = run(&cfg(), &skewed, 0).metrics.bdr;
        assert!(
            s > b,
            "degree-imbalanced frontier should diverge more: skewed {s} vs balanced {b}"
        );
    }

    /// Root -> 64 children; child i gets `deg(i)` unique grandchildren.
    fn two_level_tree(deg: impl Fn(u32) -> u32) -> Csr {
        let mut edges: Vec<(u32, u32, f32)> = (1..=64).map(|i| (0, i, 1.0)).collect();
        let mut next = 65u32;
        for i in 1..=64u32 {
            for _ in 0..deg(i) {
                edges.push((i, next, 1.0));
                next += 1;
            }
        }
        Csr::from_edges(next as usize, &edges)
    }
}
