//! GPU degree centrality: thread-centric edge scan with atomic in-degree
//! accumulation.
//!
//! The paper's divergence outlier (Figure 10, upper-right; MDR 0.87):
//! every thread walks its vertex's out-edges (degree-imbalanced loops →
//! high BDR) and fires an atomic increment at each target's counter
//! (scattered single-word RMWs → maximal replays and the atomic
//! serialization that caps its IPC despite 75 GB/s of traffic, Figure 11).

use std::sync::atomic::{AtomicU32, Ordering};

use graphbig_framework::csr::Csr;
use graphbig_simt::kernel::launch;
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

/// Result of a GPU degree-centrality run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDCentrResult {
    /// Normalized centrality per dense vertex.
    pub centrality: Vec<f64>,
    /// Device metrics.
    pub metrics: GpuMetrics,
}

/// Run degree centrality: `(out + in) / (n - 1)` per vertex.
pub fn run(cfg: &GpuConfig, csr: &Csr) -> GpuDCentrResult {
    let n = csr.num_vertices();
    if n == 0 {
        return GpuDCentrResult {
            centrality: Vec::new(),
            metrics: GpuMetrics::default(),
        };
    }
    let indeg: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let row = csr.row_offsets();

    let kernel = |tid: usize, lane: &mut Lane| {
        lane.load(&row[tid], 16);
        // tight unrolled/predicated edge loop: one col load + one scattered
        // atomic per edge — the paper's MDR driver
        for v_ref in csr.neighbors(tid as u32) {
            lane.load(v_ref, 4);
            let v = *v_ref as usize;
            indeg[v].fetch_add(1, Ordering::Relaxed);
            lane.atomic(&indeg[v], 4);
        }
        lane.branch(false);
    };
    let stats = launch(cfg, n, &kernel);

    let denom = (n.saturating_sub(1)).max(1) as f64;
    let centrality: Vec<f64> = (0..n)
        .map(|u| {
            (csr.degree(u as u32) as u64 + indeg[u].load(Ordering::Relaxed) as u64) as f64 / denom
        })
        .collect();
    GpuDCentrResult {
        centrality,
        metrics: GpuMetrics::from_stats(cfg, &stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    #[test]
    fn star_hub_scores_highest() {
        let edges: Vec<(u32, u32, f32)> = (1..10).map(|i| (0, i, 1.0)).collect();
        let csr = Csr::from_edges(10, &edges);
        let r = run(&cfg(), &csr);
        assert!((r.centrality[0] - 1.0).abs() < 1e-12);
        assert!((r.centrality[1] - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn matches_cpu_dcentr() {
        let mut g = graphbig_datagen::Dataset::Ldbc.generate_with_vertices(300);
        let csr = Csr::from_graph(&g);
        let gpu = run(&cfg(), &csr);
        graphbig_workloads::dcentr::run(&mut g);
        for u in 0..csr.num_vertices() {
            let id = csr.id_of(u as u32);
            let cpu = graphbig_workloads::dcentr::centrality_of(&g, id).unwrap();
            assert!(
                (gpu.centrality[u] - cpu).abs() < 1e-9,
                "vertex {id}: {} vs {cpu}",
                gpu.centrality[u]
            );
        }
    }

    #[test]
    fn scattered_atomics_produce_high_mdr() {
        let g = graphbig_datagen::Dataset::Ldbc.generate_with_vertices(3_000);
        let csr = Csr::from_graph(&g);
        let r = run(&cfg(), &csr);
        assert!(
            r.metrics.mdr > 0.5,
            "DCentr should be divergence-heavy: {}",
            r.metrics.mdr
        );
        assert!(r.metrics.atomic_ops > 0);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert!(run(&cfg(), &csr).centrality.is_empty());
    }
}
