//! GPU k-core: two-phase peeling.
//!
//! Each round runs (1) a vertex-centric *mark* kernel — a uniform,
//! coalesced three-instruction degree check per thread — and (2) an
//! edge-centric *decrement* kernel over the COO list that subtracts from
//! the surviving endpoints of freshly removed vertices. Both phases give
//! every thread the same trip count, which is why kCore sits in the
//! lower-left of Figure 10 (lowest BDR, minimum MDR of 0.25).

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

use graphbig_framework::coo::Coo;
use graphbig_framework::csr::Csr;
use graphbig_simt::kernel::Device;
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

/// Result of a GPU k-core run (fixed `k`).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuKCoreResult {
    /// Vertices surviving in the k-core.
    pub core_size: u64,
    /// Peel rounds executed.
    pub rounds: u32,
    /// Survival mask per dense vertex.
    pub in_core: Vec<bool>,
    /// Device metrics.
    pub metrics: GpuMetrics,
}

/// Result of a full GPU core decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuKCoreDecomposition {
    /// Largest non-empty core (the degeneracy).
    pub degeneracy: u32,
    /// Core number per dense vertex.
    pub core: Vec<u32>,
    /// Device metrics over all stages.
    pub metrics: GpuMetrics,
}

/// Shared state of the two peeling kernels.
struct PeelState {
    /// Current degree; `-1` marks removed.
    degree: Vec<AtomicI32>,
    /// Round in which the vertex was removed (`-1` = alive).
    removed_round: Vec<AtomicI32>,
}

impl PeelState {
    fn new(csr: &Csr) -> Self {
        let n = csr.num_vertices();
        PeelState {
            degree: (0..n)
                .map(|u| AtomicI32::new(csr.degree(u as u32) as i32))
                .collect(),
            removed_round: (0..n).map(|_| AtomicI32::new(-1)).collect(),
        }
    }

    /// One peel round at threshold `k`; returns whether anything peeled.
    fn round(&self, dev: &mut Device, coo: &Coo, n: usize, k: u32, round_id: i32) -> bool {
        let removed_any = AtomicBool::new(false);
        // Phase 1: vertex-centric mark (uniform coalesced check).
        let mark = |tid: usize, lane: &mut Lane| {
            lane.load(&self.degree[tid], 4);
            let d = self.degree[tid].load(Ordering::Relaxed);
            let peel = d >= 0 && (d as u32) < k;
            lane.branch(peel);
            lane.alu(1);
            if peel {
                self.degree[tid].store(-1, Ordering::Relaxed);
                self.removed_round[tid].store(round_id, Ordering::Relaxed);
                lane.store(&self.degree[tid], 4);
                lane.store(&self.removed_round[tid], 4);
                removed_any.store(true, Ordering::Relaxed);
            }
        };
        dev.launch(n, &mark);
        if !removed_any.load(Ordering::Relaxed) {
            return false;
        }
        // Phase 2: edge-centric decrement (balanced one-edge threads).
        let dec = |tid: usize, lane: &mut Lane| {
            lane.load(&coo.src()[tid], 4); // coalesced
            let (u, v, _) = coo.edge(tid);
            lane.load(&self.removed_round[u as usize], 4); // coalesced by src order
            let fresh = self.removed_round[u as usize].load(Ordering::Relaxed) == round_id;
            lane.branch(fresh);
            if fresh {
                lane.load(&coo.dst()[tid], 4);
                if self.degree[v as usize].load(Ordering::Relaxed) >= 0 {
                    self.degree[v as usize].fetch_sub(1, Ordering::Relaxed);
                    lane.atomic(&self.degree[v as usize], 4);
                }
            }
        };
        dev.launch(coo.num_edges(), &dec);
        true
    }
}

/// Compute the `k`-core of the (symmetrized) graph.
pub fn run(cfg: &GpuConfig, csr: &Csr, k: u32) -> GpuKCoreResult {
    let n = csr.num_vertices();
    if n == 0 {
        return GpuKCoreResult {
            core_size: 0,
            rounds: 0,
            in_core: Vec::new(),
            metrics: GpuMetrics::default(),
        };
    }
    let coo = Coo::from_csr(csr);
    let state = PeelState::new(csr);
    let mut dev = Device::new(cfg.clone());
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        if !state.round(&mut dev, &coo, n, k, rounds as i32) {
            break;
        }
    }
    let in_core: Vec<bool> = state
        .degree
        .iter()
        .map(|d| d.load(Ordering::Relaxed) >= 0)
        .collect();
    GpuKCoreResult {
        core_size: in_core.iter().filter(|&&x| x).count() as u64,
        rounds,
        in_core,
        metrics: dev.metrics(),
    }
}

/// Full core decomposition: repeated two-phase peeling with increasing
/// `k`, matching the CPU workload's Matula–Beck output.
pub fn decompose(cfg: &GpuConfig, csr: &Csr) -> GpuKCoreDecomposition {
    let n = csr.num_vertices();
    if n == 0 {
        return GpuKCoreDecomposition {
            degeneracy: 0,
            core: Vec::new(),
            metrics: GpuMetrics::default(),
        };
    }
    let coo = Coo::from_csr(csr);
    let state = PeelState::new(csr);
    let core: Vec<AtomicI32> = (0..n).map(|_| AtomicI32::new(0)).collect();
    let mut dev = Device::new(cfg.clone());
    let mut k = 1u32;
    let mut degeneracy = 0u32;
    let mut round_id = 0i32;
    let mut live = n as u64;
    while live > 0 {
        loop {
            round_id += 1;
            // record which round marks belong to this k-stage: assign core
            // numbers right after each successful round
            let before: Vec<i32> = state
                .removed_round
                .iter()
                .map(|r| r.load(Ordering::Relaxed))
                .collect();
            if !state.round(&mut dev, &coo, n, k, round_id) {
                break;
            }
            for (v, &prev) in before.iter().enumerate() {
                if prev == -1 && state.removed_round[v].load(Ordering::Relaxed) == round_id {
                    core[v].store(k as i32 - 1, Ordering::Relaxed);
                }
            }
        }
        live = state
            .degree
            .iter()
            .filter(|d| d.load(Ordering::Relaxed) >= 0)
            .count() as u64;
        if live > 0 {
            degeneracy = k;
        }
        k += 1;
    }
    GpuKCoreDecomposition {
        degeneracy,
        core: core
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as u32)
            .collect(),
        metrics: dev.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    fn sym(edges: &[(u32, u32)], n: usize) -> Csr {
        let e: Vec<(u32, u32, f32)> = edges.iter().map(|&(a, b)| (a, b, 1.0)).collect();
        Csr::from_edges(n, &e).symmetrize()
    }

    #[test]
    fn triangle_survives_2core_tail_does_not() {
        let csr = sym(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let r = run(&cfg(), &csr, 2);
        assert_eq!(r.core_size, 3);
        assert_eq!(r.in_core, vec![true, true, true, false]);
    }

    #[test]
    fn cascading_peel() {
        // path 0-1-2-3: 2-core is empty, removal cascades
        let csr = sym(&[(0, 1), (1, 2), (2, 3)], 4);
        let r = run(&cfg(), &csr, 2);
        assert_eq!(r.core_size, 0);
        assert!(r.rounds >= 2, "peeling cascades over rounds");
    }

    #[test]
    fn k1_keeps_everything_connected() {
        let csr = sym(&[(0, 1), (1, 2)], 4);
        let r = run(&cfg(), &csr, 1);
        assert_eq!(r.core_size, 3); // vertex 3 is isolated
    }

    #[test]
    fn matches_cpu_core_numbers() {
        // CPU kCore gives core numbers; GPU k-core for k must keep exactly
        // the vertices with core >= k.
        let mut g = graphbig_datagen::Dataset::WatsonGene.generate_with_vertices(400);
        let csr = graphbig_framework::csr::Csr::from_graph(&g).symmetrize();
        graphbig_workloads::kcore::run(&mut g);
        for k in [1u32, 2, 3] {
            let r = run(&cfg(), &csr, k);
            for u in 0..csr.num_vertices() {
                let id = csr.id_of(u as u32);
                let core = graphbig_workloads::kcore::core_of(&g, id).unwrap();
                assert_eq!(r.in_core[u], core >= k, "k={k}, vertex {id} (core {core})");
            }
        }
    }

    #[test]
    fn decompose_matches_cpu_core_numbers() {
        let mut g = graphbig_datagen::Dataset::WatsonGene.generate_with_vertices(300);
        let csr = graphbig_framework::csr::Csr::from_graph(&g).symmetrize();
        let gpu = decompose(&cfg(), &csr);
        let cpu = graphbig_workloads::kcore::run(&mut g);
        assert_eq!(gpu.degeneracy, cpu.max_core);
        for u in 0..csr.num_vertices() {
            let id = csr.id_of(u as u32);
            let core = graphbig_workloads::kcore::core_of(&g, id).unwrap();
            assert_eq!(gpu.core[u], core, "vertex {id}");
        }
    }

    #[test]
    fn decompose_triangle_with_tail() {
        let csr = sym(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let d = decompose(&cfg(), &csr);
        assert_eq!(d.degeneracy, 2);
        assert_eq!(d.core, vec![2, 2, 2, 1]);
    }

    #[test]
    fn two_phase_peel_keeps_divergence_low() {
        let g = graphbig_datagen::Dataset::Ldbc.generate_with_vertices(3_000);
        let csr = graphbig_framework::csr::Csr::from_graph(&g).symmetrize();
        let r = decompose(&cfg(), &csr);
        assert!(
            r.metrics.bdr < 0.4,
            "kCore should stay uniform: {}",
            r.metrics.bdr
        );
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(run(&cfg(), &csr, 3).core_size, 0);
        assert_eq!(decompose(&cfg(), &csr).degeneracy, 0);
    }
}
