//! GPU graph coloring — Luby–Jones, thread-centric.
//!
//! Each round every uncolored vertex compares its hash priority against
//! every uncolored neighbor (heavy per-edge computation over
//! degree-imbalanced loops), which is exactly why GColor shows one of the
//! highest branch divergence rates in Figure 10.
//!
//! Priorities reuse the framework's deterministic `hash_id`, so the GPU
//! coloring is identical to the CPU workload's.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use graphbig_framework::csr::Csr;
use graphbig_framework::index::hash_id;
use graphbig_simt::kernel::Device;
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

/// Result of a GPU coloring run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuGColorResult {
    /// Colors used.
    pub colors: u32,
    /// Per-vertex colors.
    pub color: Vec<i64>,
    /// Rounds executed.
    pub rounds: u32,
    /// Device metrics.
    pub metrics: GpuMetrics,
}

/// Color the (symmetrized) graph.
pub fn run(cfg: &GpuConfig, csr: &Csr) -> GpuGColorResult {
    let n = csr.num_vertices();
    let color: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    let mut dev = Device::new(cfg.clone());
    let mut rounds = 0u32;
    // Compacted worklist of uncolored vertices, one thread each per round.
    let mut worklist: Vec<u32> = (0..n as u32).collect();

    while !worklist.is_empty() {
        {
            rounds += 1;
            let progressed = AtomicBool::new(false);
            let wl = &worklist;
            let kernel = |tid: usize, lane: &mut Lane| {
                lane.load(&wl[tid], 4); // coalesced worklist fetch
                let me = wl[tid] as usize;
                let my_id = csr.id_of(me as u32);
                let my_pri = hash_id(my_id);
                lane.alu(3);
                // local-max test over uncolored neighbors
                let mut is_max = true;
                for v_ref in csr.neighbors(me as u32) {
                    lane.branch(true); // per-edge loop
                    lane.load(v_ref, 4);
                    let v = *v_ref as usize;
                    if v == me {
                        continue;
                    }
                    lane.load(&color[v], 8);
                    let v_uncolored = color[v].load(Ordering::Relaxed) < 0;
                    lane.branch(v_uncolored);
                    if v_uncolored {
                        let vp = hash_id(csr.id_of(v as u32));
                        lane.alu(3);
                        let loses = vp > my_pri || (vp == my_pri && csr.id_of(v as u32) > my_id);
                        lane.branch(loses);
                        if loses {
                            is_max = false;
                            break;
                        }
                    }
                }
                lane.branch(is_max);
                if is_max {
                    // smallest color absent from the neighborhood
                    let mut used = Vec::new();
                    for v_ref in csr.neighbors(me as u32) {
                        let v = *v_ref as usize;
                        lane.load(&color[v], 8);
                        let c = color[v].load(Ordering::Relaxed);
                        if c >= 0 {
                            used.push(c);
                        }
                        lane.alu(1);
                    }
                    used.sort_unstable();
                    used.dedup();
                    let mut pick = 0i64;
                    for c in used {
                        lane.alu(1);
                        if c == pick {
                            pick += 1;
                        } else if c > pick {
                            break;
                        }
                    }
                    color[me].store(pick, Ordering::Relaxed);
                    lane.store(&color[me], 8);
                    progressed.store(true, Ordering::Relaxed);
                }
            };
            dev.launch(worklist.len(), &kernel);
            debug_assert!(
                progressed.load(Ordering::Relaxed),
                "Luby-Jones always progresses"
            );
        }
        worklist.retain(|&v| color[v as usize].load(Ordering::Relaxed) < 0);
    }

    let color: Vec<i64> = color.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let colors = color
        .iter()
        .copied()
        .max()
        .map(|m| (m + 1) as u32)
        .unwrap_or(0);
    GpuGColorResult {
        colors,
        color,
        rounds,
        metrics: dev.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    fn sym(edges: &[(u32, u32)], n: usize) -> Csr {
        let e: Vec<(u32, u32, f32)> = edges.iter().map(|&(a, b)| (a, b, 1.0)).collect();
        Csr::from_edges(n, &e).symmetrize()
    }

    #[test]
    fn coloring_is_proper() {
        let csr = sym(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 0)], 4);
        let r = run(&cfg(), &csr);
        for u in 0..4u32 {
            for &v in csr.neighbors(u) {
                assert_ne!(r.color[u as usize], r.color[v as usize], "{u}-{v}");
            }
        }
        assert!(r.colors >= 3); // contains a triangle
    }

    #[test]
    fn every_vertex_gets_colored() {
        let csr = sym(&[(0, 1), (2, 3)], 5);
        let r = run(&cfg(), &csr);
        assert!(r.color.iter().all(|&c| c >= 0));
    }

    #[test]
    fn matches_cpu_coloring() {
        let mut g = graphbig_datagen::Dataset::WatsonGene.generate_with_vertices(300);
        let csr = graphbig_framework::csr::Csr::from_graph(&g);
        let gpu = run(&cfg(), &csr);
        graphbig_workloads::gcolor::run(&mut g);
        for u in 0..csr.num_vertices() {
            let id = csr.id_of(u as u32);
            let cpu = graphbig_workloads::gcolor::color_of(&g, id).unwrap();
            assert_eq!(gpu.color[u], cpu, "vertex {id}");
        }
    }

    #[test]
    fn per_edge_computation_diverges() {
        let g = graphbig_datagen::Dataset::Ldbc.generate_with_vertices(3_000);
        let csr = graphbig_framework::csr::Csr::from_graph(&g).symmetrize();
        let r = run(&cfg(), &csr);
        assert!(
            r.metrics.bdr > 0.3,
            "GColor is branch-heavy: {}",
            r.metrics.bdr
        );
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        let r = run(&cfg(), &csr);
        assert_eq!(r.colors, 0);
    }
}
