//! Phase spans and instant events with per-thread buffers.
//!
//! The recording path is designed for graph-kernel hot loops:
//!
//! * a span is opened with [`span`] (or the [`span!`](crate::span!) macro,
//!   which attaches numeric arguments) and records one complete event when
//!   its guard drops — monotonic microsecond timestamps from one
//!   process-wide epoch;
//! * every thread appends to its *own* buffer (a thread-local `Vec` behind
//!   an uncontended per-thread mutex, registered once in a global list), so
//!   recording never contends across workers;
//! * events are tagged with a small per-thread `tid` and the OS thread name
//!   (`graphbig-worker-N` for pool workers), which become separate tracks
//!   in the Chrome trace view;
//! * with the `spans` cargo feature **off** (the default) everything in
//!   this module compiles to no-ops and zero-sized guards; with it on, a
//!   single relaxed atomic load gates recording at runtime (see
//!   [`enable`]/[`enabled`]).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One recorded event: a completed span or an instant marker.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Static span name (e.g. `"bfs.level"`).
    pub name: &'static str,
    /// Microseconds since the process epoch.
    pub ts_us: u64,
    /// Span duration in microseconds; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Small per-thread id (0 = first recording thread).
    pub tid: u32,
    /// Numeric arguments (`span!("x", depth = 3)` ⇒ `[("depth", 3.0)]`).
    pub args: Vec<(&'static str, f64)>,
}

/// A collected trace: all events plus thread-name metadata.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Every recorded event, in per-thread order.
    pub events: Vec<Event>,
    /// `(tid, thread name)` pairs for track labeling.
    pub threads: Vec<(u32, String)>,
}

impl Trace {
    /// Per-name summary: `(count, total span microseconds)` sorted by name.
    pub fn summary(&self) -> Vec<(String, u64, u64)> {
        let mut map: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
        for e in &self.events {
            let entry = map.entry(e.name).or_default();
            entry.0 += 1;
            entry.1 += e.dur_us.unwrap_or(0);
        }
        map.into_iter()
            .map(|(name, (count, us))| (name.to_string(), count, us))
            .collect()
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide monotonic epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span recording on (also fixes the epoch so timestamps are small).
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn span recording off.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// True when spans are being recorded. Always false without the `spans`
/// cargo feature (the recording path does not exist then).
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "spans") && ENABLED.load(Ordering::Relaxed)
}

#[cfg(feature = "spans")]
mod recording {
    use super::*;
    use std::cell::RefCell;
    use std::sync::atomic::AtomicU32;
    use std::sync::{Arc, Mutex};

    /// One thread's shared, mutex-guarded event buffer.
    type SharedBuf = Arc<Mutex<Vec<Event>>>;
    /// (thread id, thread name, buffer) as registered with the collector.
    type ThreadEntry = (u32, String, SharedBuf);

    /// All per-thread buffers ever registered (buffers outlive threads so
    /// worker events survive pool drops).
    fn registry() -> &'static Mutex<Vec<ThreadEntry>> {
        static REG: OnceLock<Mutex<Vec<ThreadEntry>>> = OnceLock::new();
        REG.get_or_init(Default::default)
    }

    static NEXT_TID: AtomicU32 = AtomicU32::new(0);

    thread_local! {
        static LOCAL: RefCell<Option<(u32, SharedBuf)>> = const { RefCell::new(None) };
    }

    fn with_local<R>(f: impl FnOnce(u32, &Mutex<Vec<Event>>) -> R) -> R {
        LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            let (tid, buf) = slot.get_or_insert_with(|| {
                let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
                let name = std::thread::current()
                    .name()
                    .unwrap_or("unnamed")
                    .to_string();
                let buf: SharedBuf = Arc::default();
                registry()
                    .lock()
                    .unwrap()
                    .push((tid, name, Arc::clone(&buf)));
                (tid, buf)
            });
            f(*tid, buf)
        })
    }

    pub(super) fn record(
        event_name: &'static str,
        ts_us: u64,
        dur_us: Option<u64>,
        args: Vec<(&'static str, f64)>,
    ) {
        with_local(|tid, buf| {
            buf.lock().unwrap().push(Event {
                name: event_name,
                ts_us,
                dur_us,
                tid,
                args,
            });
        });
    }

    pub(super) fn take() -> Trace {
        let reg = registry().lock().unwrap();
        let mut trace = Trace::default();
        for (tid, name, buf) in reg.iter() {
            let mut events = buf.lock().unwrap();
            if !events.is_empty() {
                trace.threads.push((*tid, name.clone()));
                trace.events.append(&mut events);
            }
        }
        trace
    }
}

/// Live span payload: (name, start µs, args).
#[cfg(feature = "spans")]
type SpanData = (&'static str, u64, Vec<(&'static str, f64)>);

/// Open guard for an in-flight span; records a complete event on drop.
///
/// Without the `spans` feature this is a zero-sized no-op type.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "spans")]
    inner: Option<SpanData>,
}

impl SpanGuard {
    /// Attach a numeric argument (no-op when disabled).
    #[cfg(feature = "spans")]
    #[inline]
    pub fn arg(mut self, key: &'static str, value: f64) -> Self {
        if let Some((_, _, args)) = self.inner.as_mut() {
            args.push((key, value));
        }
        self
    }

    /// Attach a numeric argument (no-op when disabled).
    #[cfg(not(feature = "spans"))]
    #[inline]
    pub fn arg(self, key: &'static str, value: f64) -> Self {
        let _ = (key, value);
        self
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "spans")]
        if let Some((name, start, args)) = self.inner.take() {
            recording::record(name, start, Some(now_us().saturating_sub(start)), args);
        }
    }
}

/// Open a span; the returned guard records its duration when dropped.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "spans")]
    {
        if enabled() {
            return SpanGuard {
                inner: Some((name, now_us(), Vec::new())),
            };
        }
        SpanGuard { inner: None }
    }
    #[cfg(not(feature = "spans"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

/// Record an instant event (zero duration) with arguments.
#[inline]
pub fn instant(name: &'static str, args: &[(&'static str, f64)]) {
    #[cfg(feature = "spans")]
    if enabled() {
        recording::record(name, now_us(), None, args.to_vec());
    }
    #[cfg(not(feature = "spans"))]
    let _ = (name, args);
}

/// Drain every thread's buffer into one [`Trace`] (empty without the
/// `spans` feature). Threads that recorded nothing are omitted.
pub fn take_trace() -> Trace {
    #[cfg(feature = "spans")]
    {
        recording::take()
    }
    #[cfg(not(feature = "spans"))]
    {
        Trace::default()
    }
}

/// Open a span with optional named numeric arguments.
///
/// ```
/// let _level = graphbig_telemetry::span!("bfs.level", depth = 3, frontier = 128);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::span($name)$(.arg(stringify!($key), $value as f64))+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise the no-op path when built without the feature
    // and the real path with `--features spans`; both must pass.

    #[test]
    fn disabled_spans_record_nothing() {
        disable();
        {
            let _s = span("test.disabled");
        }
        instant("test.disabled.instant", &[("x", 1.0)]);
        let t = take_trace();
        assert!(t.events.iter().all(|e| !e.name.contains("disabled")));
    }

    #[cfg(feature = "spans")]
    #[test]
    fn enabled_spans_record_with_args_and_tid() {
        enable();
        {
            let _s = crate::span!("test.level", depth = 2, frontier = 64);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        instant("test.switch", &[("scout", 10.0)]);
        let from_worker = std::thread::Builder::new()
            .name("test-worker".into())
            .spawn(|| {
                enable();
                let _s = span("test.worker_side");
            })
            .unwrap();
        from_worker.join().unwrap();
        disable();
        let t = take_trace();
        let level = t.events.iter().find(|e| e.name == "test.level").unwrap();
        assert!(level.dur_us.unwrap() >= 1000, "{level:?}");
        assert_eq!(level.args, vec![("depth", 2.0), ("frontier", 64.0)]);
        let sw = t.events.iter().find(|e| e.name == "test.switch").unwrap();
        assert_eq!(sw.dur_us, None);
        let worker = t
            .events
            .iter()
            .find(|e| e.name == "test.worker_side")
            .unwrap();
        assert_ne!(worker.tid, level.tid);
        assert!(t.threads.iter().any(|(_, n)| n == "test-worker"));
        // Buffers were drained.
        assert!(take_trace().events.is_empty());
    }

    #[test]
    fn summary_aggregates_by_name() {
        let t = Trace {
            events: vec![
                Event {
                    name: "a",
                    ts_us: 0,
                    dur_us: Some(5),
                    tid: 0,
                    args: vec![],
                },
                Event {
                    name: "a",
                    ts_us: 9,
                    dur_us: Some(7),
                    tid: 1,
                    args: vec![],
                },
                Event {
                    name: "b",
                    ts_us: 1,
                    dur_us: None,
                    tid: 0,
                    args: vec![],
                },
            ],
            threads: vec![],
        };
        assert_eq!(
            t.summary(),
            vec![("a".to_string(), 2, 12), ("b".to_string(), 1, 0)]
        );
    }
}
