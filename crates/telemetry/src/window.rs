//! Sliding-window latency estimators for live SLO stats.
//!
//! End-of-run aggregates answer "how did the run go"; a serving loop needs
//! "how are the last ten seconds going". Two estimators cover that:
//!
//! * [`WindowedHistogram`] — a ring of [`Histogram`] slices covering a
//!   fixed wall-clock window. Recording lands in the current slice;
//!   advancing time resets expired slices, so a snapshot is always the
//!   merge of only the last `slices × slice_ms` milliseconds of
//!   observations. Quantiles come from the merged
//!   [`HistogramSnapshot`](crate::metrics::HistogramSnapshot) with the
//!   interpolated estimator.
//! * [`Ewma`] — an exponentially weighted moving average over a lock-free
//!   `f64`-bits CAS loop, for a smooth "current latency" signal between
//!   histogram rotations.
//!
//! Both are written for concurrent hot-path use: `record`/`observe` take
//! no locks in the common case (rotation grabs a mutex, but only on the
//! first recording after a slice boundary). Rotation racing a concurrent
//! `record` can misplace that one observation by one slice — a benign
//! error for a sliding window, documented rather than locked away.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{Histogram, HistogramSnapshot};

/// A sliding-window histogram: `slices` log₂ histograms, each covering
/// `slice_ms` of wall-clock time, recycled in a ring.
#[derive(Debug)]
pub struct WindowedHistogram {
    slices: Vec<Histogram>,
    slice_ms: u64,
    start: Instant,
    /// Sequence number of the slice currently receiving observations.
    current: AtomicU64,
    /// Serializes slice resets during rotation.
    rotate: Mutex<()>,
}

impl WindowedHistogram {
    /// A window of `slices` slices, `slice_ms` milliseconds each (total
    /// span = `slices × slice_ms`). Panics if either is zero.
    pub fn new(slices: usize, slice_ms: u64) -> WindowedHistogram {
        assert!(slices > 0 && slice_ms > 0);
        WindowedHistogram {
            slices: (0..slices).map(|_| Histogram::default()).collect(),
            slice_ms,
            start: Instant::now(),
            current: AtomicU64::new(0),
            rotate: Mutex::new(()),
        }
    }

    /// The wall-clock span the window covers, in milliseconds.
    pub fn span_ms(&self) -> u64 {
        self.slices.len() as u64 * self.slice_ms
    }

    /// Advance to the slice for "now", resetting any slices whose time has
    /// expired. Returns the current slice sequence number.
    fn advance(&self) -> u64 {
        let seq = self.start.elapsed().as_millis() as u64 / self.slice_ms;
        let cur = self.current.load(Ordering::Acquire);
        if seq <= cur {
            return cur;
        }
        let _guard = self.rotate.lock().unwrap();
        let cur = self.current.load(Ordering::Acquire);
        if seq <= cur {
            return cur; // another thread rotated while we waited
        }
        // Reset every slice between the old and new positions; after a
        // long quiet period that is at most one full lap.
        let lap = (self.slices.len() as u64).min(seq - cur);
        for s in cur + 1..=cur + lap {
            self.slices[(s % self.slices.len() as u64) as usize].reset();
        }
        self.current.store(seq, Ordering::Release);
        seq
    }

    /// Record one observation into the current slice.
    pub fn record(&self, value: u64) {
        let seq = self.advance();
        self.slices[(seq % self.slices.len() as u64) as usize].record(value);
    }

    /// Merge the live slices into one snapshot of the last
    /// [`span_ms`](Self::span_ms) milliseconds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.advance();
        let mut merged = HistogramSnapshot::default();
        for slice in &self.slices {
            merged.merge(&slice.snapshot());
        }
        merged
    }
}

/// An exponentially weighted moving average of `u64` observations,
/// updatable from any thread without locks.
#[derive(Debug)]
pub struct Ewma {
    /// Current average as `f64` bits; `NAN` until the first observation.
    bits: AtomicU64,
    alpha: f64,
    count: AtomicU64,
}

impl Ewma {
    /// A fresh average with smoothing factor `alpha` in `(0, 1]` (higher =
    /// faster to follow recent observations).
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ewma {
            bits: AtomicU64::new(f64::NAN.to_bits()),
            alpha,
            count: AtomicU64::new(0),
        }
    }

    /// Fold in one observation.
    pub fn observe(&self, value: u64) {
        self.observe_f64(value as f64);
    }

    /// Fold in one floating-point observation (ratios, correction factors).
    ///
    /// Non-finite samples are rejected outright: NaN is the estimator's
    /// "unset" sentinel, so folding in a genuinely non-finite observation
    /// (a zero-duration division, a poisoned sample) would silently reset
    /// the average instead of perturbing it. Rejected samples do not count.
    pub fn observe_f64(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let next = if old.is_nan() {
                v
            } else {
                old + self.alpha * (v - old)
            };
            match self.bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The current average (0.0 before any observation).
    pub fn value(&self) -> f64 {
        let v = f64::from_bits(self.bits.load(Ordering::Relaxed));
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// Total observations folded in.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_tracks_a_level_shift() {
        let e = Ewma::new(0.5);
        assert_eq!(e.value(), 0.0);
        assert_eq!(e.count(), 0);
        e.observe(100);
        assert_eq!(e.value(), 100.0, "first observation sets the level");
        for _ in 0..20 {
            e.observe(200);
        }
        assert!((e.value() - 200.0).abs() < 1.0, "{}", e.value());
        assert_eq!(e.count(), 21);
    }

    #[test]
    fn ewma_rejects_non_finite_samples() {
        let e = Ewma::new(0.5);
        e.observe_f64(f64::NAN);
        e.observe_f64(f64::INFINITY);
        e.observe_f64(f64::NEG_INFINITY);
        assert_eq!(e.count(), 0, "rejected samples do not count");
        assert_eq!(e.value(), 0.0, "estimator still unset");
        e.observe(100);
        assert_eq!(e.value(), 100.0);
        // Regression: a NaN after real observations must not reset the
        // level back to "unset" (NaN is the internal sentinel).
        e.observe_f64(f64::NAN);
        assert_eq!(e.value(), 100.0, "level survives a poisoned sample");
        assert_eq!(e.count(), 1);
        e.observe_f64(0.5);
        assert!((e.value() - 50.25).abs() < 1e-9, "{}", e.value());
    }

    #[test]
    fn ewma_is_safe_under_concurrent_observers() {
        let e = std::sync::Arc::new(Ewma::new(0.1));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = std::sync::Arc::clone(&e);
                s.spawn(move || {
                    for _ in 0..1000 {
                        e.observe(50);
                    }
                });
            }
        });
        assert_eq!(e.count(), 4000);
        assert!((e.value() - 50.0).abs() < 1e-9, "{}", e.value());
    }

    #[test]
    fn window_covers_recent_observations() {
        let w = WindowedHistogram::new(4, 1000);
        assert_eq!(w.span_ms(), 4000);
        for _ in 0..10 {
            w.record(100);
        }
        let s = w.snapshot();
        assert_eq!(s.count, 10);
        assert!(s.quantile(0.5) >= 64 && s.quantile(0.5) <= 128);
    }

    #[test]
    fn expired_slices_are_forgotten() {
        // 2 slices x 25ms: observations older than ~50ms fall out.
        let w = WindowedHistogram::new(2, 25);
        w.record(7);
        w.record(7);
        assert_eq!(w.snapshot().count, 2);
        std::thread::sleep(std::time::Duration::from_millis(80));
        assert_eq!(w.snapshot().count, 0, "window expired");
        w.record(9);
        assert_eq!(w.snapshot().count, 1, "fresh slice records again");
    }

    #[test]
    fn rotation_after_long_idle_resets_at_most_one_lap() {
        let w = WindowedHistogram::new(3, 1);
        w.record(5);
        std::thread::sleep(std::time::Duration::from_millis(30));
        // seq jumped by ~30 slices; advance must not scan 30 resets into
        // out-of-range indices and the old observation must be gone.
        assert_eq!(w.snapshot().count, 0);
    }
}
