//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON-object format (`{"traceEvents": [...]}`) that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: complete (`"ph": "X"`) events for spans, instant (`"ph": "i"`)
//! events for markers, and `thread_name` metadata so each pool worker gets
//! its own labeled track.

use crate::json::{Json, ObjBuilder};
use crate::span::{Event, Trace};

/// Process id used for all events (one process, one track group).
const PID: u64 = 1;

fn args_json(args: &[(&'static str, f64)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|&(k, v)| (k.to_string(), Json::Num(v)))
            .collect(),
    )
}

fn event_json(e: &Event) -> Json {
    let b = ObjBuilder::new()
        .push("name", Json::Str(e.name.to_string()))
        .push("cat", Json::Str(category(e.name).to_string()))
        .push(
            "ph",
            Json::Str(if e.dur_us.is_some() { "X" } else { "i" }.into()),
        )
        .push("ts", Json::Num(e.ts_us as f64))
        .push_opt("dur", e.dur_us.map(|d| Json::Num(d as f64)))
        .push("pid", Json::Num(PID as f64))
        .push("tid", Json::Num(e.tid as f64));
    let b = if e.dur_us.is_none() {
        // instant events need a scope; "t" = thread-scoped
        b.push("s", Json::Str("t".into()))
    } else {
        b
    };
    b.push("args", args_json(&e.args)).build()
}

/// Category from the span name's first dotted segment
/// (`bfs.level` → `bfs`), which Perfetto can filter on.
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Render a trace as a Chrome `trace_event` JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(trace.events.len() + trace.threads.len());
    for (tid, name) in &trace.threads {
        events.push(
            ObjBuilder::new()
                .push("name", Json::Str("thread_name".into()))
                .push("ph", Json::Str("M".into()))
                .push("pid", Json::Num(PID as f64))
                .push("tid", Json::Num(*tid as f64))
                .push(
                    "args",
                    ObjBuilder::new()
                        .push("name", Json::Str(name.clone()))
                        .build(),
                )
                .build(),
        );
    }
    events.extend(trace.events.iter().map(event_json));
    ObjBuilder::new()
        .push("traceEvents", Json::Arr(events))
        .push("displayTimeUnit", Json::Str("ms".into()))
        .build()
        .to_compact()
}

/// Write a trace to `path` as Chrome trace JSON.
pub fn write_chrome_trace(trace: &Trace, path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_chrome_json(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Trace {
        Trace {
            events: vec![
                Event {
                    name: "bfs.level",
                    ts_us: 10,
                    dur_us: Some(250),
                    tid: 0,
                    args: vec![("depth", 1.0), ("frontier", 64.0)],
                },
                Event {
                    name: "bfs.switch",
                    ts_us: 300,
                    dur_us: None,
                    tid: 2,
                    args: vec![("scout", 9000.0)],
                },
            ],
            threads: vec![(0, "main".into()), (2, "graphbig-worker-1".into())],
        }
    }

    #[test]
    fn chrome_json_is_valid_and_complete() {
        let text = to_chrome_json(&sample());
        let doc = parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 2 events
        assert_eq!(events.len(), 4);
        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("main")
        );
        let level = &events[2];
        assert_eq!(level.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(level.get("cat").unwrap().as_str(), Some("bfs"));
        assert_eq!(level.get("dur").unwrap().as_u64(), Some(250));
        assert_eq!(
            level.get("args").unwrap().get("depth").unwrap().as_u64(),
            Some(1)
        );
        let switch = &events[3];
        assert_eq!(switch.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(switch.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(switch.get("tid").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn empty_trace_still_loads() {
        let doc = parse(&to_chrome_json(&Trace::default())).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
