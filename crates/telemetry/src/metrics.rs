//! Runtime metrics: counters, gauges, and log₂-bucket histograms behind a
//! name-keyed registry, plus the [`MetricSink`] trait that lets wall-clock
//! metrics and the machine model's simulated counters land in one schema.
//!
//! Handles ([`Counter`], [`Histogram`]) are cheap `Arc`s over atomics:
//! look a metric up once outside a loop, then `inc`/`record` from any
//! thread without touching the registry lock again.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::{Json, ObjBuilder};

/// Number of log₂ buckets: values up to `2^63` are representable.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram with log₂ buckets: bucket `0` counts zeros, bucket `i`
/// (`i ≥ 1`) counts values in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Which log₂ bucket a value falls into.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Reset every bucket to zero (used by sliding-window estimators when
    /// a window slice expires). Not atomic with respect to concurrent
    /// `record` calls: an observation racing a reset may land in either
    /// the old or the new window, which sliding windows tolerate.
    pub fn reset(&self) {
        let inner = &self.0;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum.store(0, Ordering::Relaxed);
    }

    /// Snapshot the current bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let buckets = inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                // bucket upper bound (exclusive): 1 for the zero bucket,
                // else 2^i
                (c > 0).then(|| (if i == 0 { 1 } else { 1u64 << i.min(63) }, c))
            })
            .collect();
        HistogramSnapshot {
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram contents: `(exclusive upper bound, count)` per
/// non-empty log₂ bucket.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`), linearly interpolated within the
    /// log₂ bucket holding the rank-`⌈q·count⌉` observation: the rank's
    /// fractional position inside the bucket is mapped across `(lower, le]`
    /// (rounding up), so a rank at the very end of a bucket still reports
    /// the old conservative bound `le`. Returns 0 when the histogram is
    /// empty, and 0 for ranks inside the zero bucket (which holds only
    /// zeros).
    ///
    /// Interpolation halves the systematic upper-bound bias of plain
    /// bucket-bound reporting; the estimate can now land on either side of
    /// the true quantile, but stays within the log₂ resolution in both
    /// directions — strictly above `lower = le/2` and at most `le`, while
    /// the true value lies in `[lower, le)`, so estimate and truth are
    /// always within 2× of each other. The engine additionally publishes
    /// exact percentiles computed from raw latency samples for its
    /// committed benchmarks.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(le, c) in &self.buckets {
            if seen + c >= rank {
                if le <= 1 {
                    // The zero bucket holds only zeros.
                    return 0;
                }
                let lower = le / 2;
                let into = rank - seen; // 1..=c
                return lower + ((le - lower) as f64 * into as f64 / c as f64).ceil() as u64;
            }
            seen += c;
        }
        self.buckets.last().map(|&(le, _)| le).unwrap_or(0)
    }

    /// Fold another snapshot into this one (bucket-wise sum), used to merge
    /// the live slices of a sliding-window histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for &(le, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&le, |&(b, _)| b) {
                Ok(i) => self.buckets[i].1 += c,
                Err(i) => self.buckets.insert(i, (le, c)),
            }
        }
    }
}

/// A point-in-time metric value, the unit of the manifest schema.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written measurement.
    Gauge(f64),
    /// Distribution snapshot.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// A scalar view for diffing: counters/gauges as themselves, histograms
    /// as their mean.
    pub fn scalar(&self) -> f64 {
        match self {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.mean(),
        }
    }

    /// Encode into the manifest JSON schema.
    pub fn to_json(&self) -> Json {
        match self {
            MetricValue::Counter(v) => ObjBuilder::new()
                .push("type", Json::Str("counter".into()))
                .push("value", Json::Num(*v as f64))
                .build(),
            MetricValue::Gauge(v) => ObjBuilder::new()
                .push("type", Json::Str("gauge".into()))
                .push("value", Json::Num(*v))
                .build(),
            MetricValue::Histogram(h) => ObjBuilder::new()
                .push("type", Json::Str("histogram".into()))
                .push("count", Json::Num(h.count as f64))
                .push("sum", Json::Num(h.sum as f64))
                .push(
                    "buckets",
                    Json::Arr(
                        h.buckets
                            .iter()
                            .map(|&(le, c)| {
                                Json::Arr(vec![Json::Num(le as f64), Json::Num(c as f64)])
                            })
                            .collect(),
                    ),
                )
                .build(),
        }
    }

    /// Decode from the manifest JSON schema.
    pub fn from_json(v: &Json) -> Option<MetricValue> {
        match v.get("type")?.as_str()? {
            "counter" => Some(MetricValue::Counter(v.get("value")?.as_u64()?)),
            "gauge" => Some(MetricValue::Gauge(v.get("value")?.as_f64()?)),
            "histogram" => {
                let buckets = v
                    .get("buckets")?
                    .as_arr()?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr()?;
                        Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(MetricValue::Histogram(HistogramSnapshot {
                    count: v.get("count")?.as_u64()?,
                    sum: v.get("sum")?.as_u64()?,
                    buckets,
                }))
            }
            _ => None,
        }
    }
}

/// Anything that can receive metrics under the shared naming schema
/// (`subsystem.component.metric`, e.g. `machine.l1d.misses`,
/// `runtime.pool.chunks`, `bfs.switches.to_bottom_up`).
///
/// Both the live [`Registry`] and a [`RunManifest`](crate::manifest::RunManifest)'s
/// metric map implement this, which is how simulated machine counters and
/// wall-clock runtime metrics end up in one schema.
pub trait MetricSink {
    /// Record a monotonic count.
    fn counter(&mut self, name: &str, value: u64);
    /// Record a point measurement.
    fn gauge(&mut self, name: &str, value: f64);
    /// Record a distribution snapshot.
    fn histogram(&mut self, name: &str, snapshot: HistogramSnapshot);
}

impl MetricSink for BTreeMap<String, MetricValue> {
    fn counter(&mut self, name: &str, value: u64) {
        self.insert(name.to_string(), MetricValue::Counter(value));
    }
    fn gauge(&mut self, name: &str, value: f64) {
        self.insert(name.to_string(), MetricValue::Gauge(value));
    }
    fn histogram(&mut self, name: &str, snapshot: HistogramSnapshot) {
        self.insert(name.to_string(), MetricValue::Histogram(snapshot));
    }
}

enum Slot {
    Counter(Counter),
    Gauge(f64),
    Histogram(Histogram),
}

/// A name-keyed metric registry. One process-wide instance lives behind
/// [`global`]; tests and tools can build private ones.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name` (handle is lock-free afterwards).
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Counter::default()))
        {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' already registered with another type"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Histogram::default()))
        {
            Slot::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' already registered with another type"),
        }
    }

    /// Set the gauge `name` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.slots
            .lock()
            .unwrap()
            .insert(name.to_string(), Slot::Gauge(value));
    }

    /// Snapshot every metric into plain values.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        self.slots
            .lock()
            .unwrap()
            .iter()
            .map(|(name, slot)| {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(*g),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Drop every metric (mainly for tests and between harness runs).
    pub fn clear(&self) {
        self.slots.lock().unwrap().clear();
    }
}

impl MetricSink for &Registry {
    fn counter(&mut self, name: &str, value: u64) {
        Registry::counter(self, name).add(value);
    }
    fn gauge(&mut self, name: &str, value: f64) {
        self.set_gauge(name, value);
    }
    fn histogram(&mut self, name: &str, snapshot: HistogramSnapshot) {
        // Replay the snapshot shape: counts per bucket at a representative
        // value (the bound's lower edge), preserving count and total shape.
        let h = Registry::histogram(self, name);
        for &(le, c) in &snapshot.buckets {
            let representative = if le <= 1 { 0 } else { le / 2 };
            for _ in 0..c {
                h.record(representative);
            }
        }
    }
}

/// The process-wide registry the runtime and workloads populate.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.snapshot()["x"], MetricValue::Counter(5));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 900, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1930);
        assert_eq!(
            s.buckets,
            vec![(1, 1), (2, 1), (4, 2), (1024, 1), (2048, 1)]
        );
        assert!((s.mean() - 1930.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_pins_p50_p99_for_uniform_1_to_100() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Cumulative bucket counts: le2:1, le4:3, le8:7, le16:15, le32:31,
        // le64:63, le128:100. The true p50 (50) is rank 50, the 19th of 32
        // observations in (32, 64] -> 32 + ceil(32*19/32) = 51; p99 (rank
        // 99) is the 36th of 37 in (64, 128] -> 64 + ceil(64*36/37) = 127.
        assert_eq!(s.quantile(0.5), 51);
        assert_eq!(s.quantile(0.99), 127);
        assert_eq!(s.quantile(0.999), 128);
        assert_eq!(s.quantile(1.0), 128);
        // q=0 clamps to rank 1 -> interpolates inside the minimum's bucket.
        assert_eq!(s.quantile(0.0), 2);
        // Interpolation keeps the estimate within log2 resolution of the
        // truth, in both directions.
        for (q, exact) in [(0.5, 50u64), (0.9, 90), (0.99, 99)] {
            assert!(s.quantile(q) > exact / 2, "q={q}: {}", s.quantile(q));
            assert!(
                s.quantile(q) <= 2 * exact.max(1),
                "q={q}: {}",
                s.quantile(q)
            );
        }
        // For this uniform distribution interpolation is much tighter than
        // the 2x bound: within 50% of the truth at every checked quantile
        // (the old bucket-bound estimate missed p50 by 28%).
        for (q, exact) in [(0.5, 50u64), (0.9, 90), (0.99, 99)] {
            let est = s.quantile(q);
            assert!(est.abs_diff(exact) * 2 <= exact, "q={q}: {est} vs {exact}");
        }
    }

    #[test]
    fn quantile_degenerate_distributions() {
        // All observations equal (100 x 7, bucket (4, 8]): quantiles sweep
        // the bucket interior with rank, staying within log2 resolution of
        // the true value 7, and q=1.0 still reports the full bound.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(7);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let est = s.quantile(q);
            assert!((5..=8).contains(&est), "q={q}: {est}");
        }
        assert_eq!(s.quantile(0.5), 6);
        assert_eq!(s.quantile(1.0), 8);
        // All zeros -> 0 (the zero bucket holds only zeros; the old
        // bucket-bound estimate reported 1 here).
        let hz = Histogram::default();
        for _ in 0..10 {
            hz.record(0);
        }
        assert_eq!(hz.snapshot().quantile(0.99), 0);
        // Empty histogram -> 0.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
        // Single observation -> the full interpolation step lands on the
        // bucket bound at every q.
        let h1 = Histogram::default();
        h1.record(1000);
        assert_eq!(h1.snapshot().quantile(0.5), 1024);
        assert_eq!(h1.snapshot().quantile(0.001), 1024);
    }

    #[test]
    fn quantile_skewed_tail() {
        // 990 fast observations (value 3) and 10 slow ones (value 5000):
        // p50/p99 stay in the fast bucket, p999 lands in the tail bucket.
        let h = Histogram::default();
        for _ in 0..990 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(5000);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 4);
        assert_eq!(s.quantile(0.99), 4);
        // p999 (rank 999) is the 9th of 10 tail observations in
        // (4096, 8192] -> 4096 + ceil(4096*9/10) = 7783, much closer to the
        // true 5000 than the old bucket bound of 8192.
        assert_eq!(s.quantile(0.999), 7783);
    }

    #[test]
    fn snapshot_merge_sums_buckets() {
        let a = Histogram::default();
        for v in [1, 3, 900] {
            a.record(v);
        }
        let b = Histogram::default();
        for v in [3, 0, 2000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, 2907);
        assert_eq!(
            merged.buckets,
            vec![(1, 1), (2, 1), (4, 2), (1024, 1), (2048, 1)]
        );
        // Merging an empty snapshot is a no-op.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn metric_values_round_trip_json() {
        let values = [
            MetricValue::Counter(42),
            MetricValue::Gauge(0.375),
            MetricValue::Histogram(HistogramSnapshot {
                count: 3,
                sum: 9,
                buckets: vec![(2, 1), (8, 2)],
            }),
        ];
        for v in values {
            let j = v.to_json();
            let text = j.to_pretty();
            let back = MetricValue::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn registry_snapshot_covers_all_kinds() {
        let reg = Registry::new();
        reg.counter("runtime.chunks").add(7);
        reg.set_gauge("runtime.pool.utilization", 0.5);
        reg.histogram("bfs.frontier.occupancy").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap["runtime.chunks"], MetricValue::Counter(7));
        assert_eq!(snap["runtime.pool.utilization"], MetricValue::Gauge(0.5));
        assert!(matches!(
            &snap["bfs.frontier.occupancy"],
            MetricValue::Histogram(h) if h.count == 1
        ));
        reg.clear();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn sinks_share_one_schema() {
        fn fill(sink: &mut dyn MetricSink) {
            sink.counter("machine.instructions", 1000);
            sink.gauge("machine.ipc", 0.33);
            sink.histogram(
                "runtime.chunks_per_worker",
                HistogramSnapshot {
                    count: 2,
                    sum: 6,
                    buckets: vec![(4, 2)],
                },
            );
        }
        let mut map: BTreeMap<String, MetricValue> = BTreeMap::new();
        fill(&mut map);
        assert_eq!(map.len(), 3);
        let reg = Registry::new();
        fill(&mut &reg);
        let snap = reg.snapshot();
        assert_eq!(snap["machine.instructions"], MetricValue::Counter(1000));
        assert_eq!(snap["machine.ipc"], MetricValue::Gauge(0.33));
        assert!(matches!(
            &snap["runtime.chunks_per_worker"],
            MetricValue::Histogram(h) if h.count == 2
        ));
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_confusion_panics() {
        let reg = Registry::new();
        reg.counter("m");
        reg.histogram("m");
    }

    /// Merging per-lane stage histograms must be lossless at the bucket
    /// level: the merged snapshot reports exactly the quantiles of the
    /// combined stream recorded into one histogram, and both stay within
    /// the documented 2x log2-resolution bound of the true sample p99.
    #[test]
    fn merged_histograms_report_the_unmerged_streams_p99() {
        // Four "lanes" with deliberately different latency shapes, like
        // the per-class stage histograms the engine merges for reporting.
        let lanes: Vec<Vec<u64>> = vec![
            (1..=400).map(|i| i % 97 + 1).collect(),
            (1..=300).map(|i| (i * i) % 1500 + 10).collect(),
            (1..=200).map(|i| i * 40).collect(), // the heavy tail
            vec![0; 50],                         // an idle lane: all zeros
        ];
        let combined = Histogram::default();
        let mut merged = HistogramSnapshot::default();
        let mut samples: Vec<u64> = Vec::new();
        for lane in &lanes {
            let h = Histogram::default();
            for &v in lane {
                h.record(v);
                combined.record(v);
                samples.push(v);
            }
            merged.merge(&h.snapshot());
        }
        let reference = combined.snapshot();
        assert_eq!(merged.count, reference.count);
        assert_eq!(merged.sum, reference.sum);
        assert_eq!(
            merged.buckets, reference.buckets,
            "merge must be bucket-lossless"
        );
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(
                merged.quantile(q),
                reference.quantile(q),
                "q={q}: merged quantile diverged from the unmerged stream"
            );
        }
        // Both stay within the documented 2x of the true sample p99.
        samples.sort_unstable();
        let rank = ((0.99 * samples.len() as f64).ceil() as usize).max(1);
        let true_p99 = samples[rank - 1];
        let est = merged.quantile(0.99);
        assert!(
            est >= true_p99 / 2 && est <= true_p99 * 2,
            "merged p99 {est} outside 2x of true sample p99 {true_p99}"
        );
    }
}
