//! The always-on flight recorder: fixed-capacity lock-free per-thread ring
//! buffers of compact binary events.
//!
//! Unlike [`span`](crate::span) recording — which is feature-gated off in
//! serving builds — the flight recorder has **no cargo feature**: it is
//! compiled into every build and recording is on by default. It is cheap
//! enough for that role because one event is four relaxed `AtomicU64`
//! stores into a preallocated per-thread ring (no locks, no allocation, no
//! cross-thread contention on the hot path). When the ring wraps, the
//! oldest events are overwritten: the recorder always holds the
//! *last-N-events story* per thread, which is exactly what a post-mortem
//! wants.
//!
//! The engine threads its request ids through here ([`EventKind`] has one
//! variant per lifecycle stage), chaos fault fires are recorded with the
//! triggering request key, and kernels mark supersteps — so when
//! `invariants.rs` finds a violation, a kernel panics outside injection, or
//! `graphbig-serve` exits non-zero, [`auto_dump`] writes a JSON file that
//! tells the full per-request story leading up to the failure.
//!
//! Readers ([`snapshot`]) are non-destructive and tolerate concurrent
//! writers: events whose slots may have been overwritten during the read
//! are dropped (detected by re-reading the write cursor), so a snapshot
//! never contains torn events.
//!
//! [`pause`]/[`resume`] gate recording behind one relaxed atomic load — the
//! overhead bench (`flight_recorder_overhead`) measures enabled-vs-paused
//! on a full kernel to back the "always-on is affordable" claim.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::{Json, ObjBuilder};
use crate::span::{self, Event, Trace};

/// Default ring capacity per thread, in events. Override with the
/// `GRAPHBIG_FLIGHT_CAPACITY` environment variable (read once, at the
/// first recording in the process).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Words of storage per event (timestamp, packed header, id, argument).
const WORDS: usize = 4;

/// Lane value meaning "no lane" (the event is not lane-scoped).
pub const NO_LANE: u8 = u8::MAX;

/// Schema identifier written into every dump.
pub const DUMP_SCHEMA: &str = "graphbig.flight_recorder/v1";

/// What kind of moment an event marks. One variant per request lifecycle
/// stage plus the cross-cutting markers (faults, retries, kernel progress).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A request entered admission (arg = chaos tag, correlating the
    /// request id with fault-fire events keyed by tag).
    Admit = 1,
    /// Admission rejected the request (arg: 0 = queue full, 1 = cost
    /// budget). Terminal — rejected requests have no further stages.
    Reject = 2,
    /// The admitted request was pushed into its priority lane (arg = cost).
    Enqueue = 3,
    /// An executor popped the request (arg = queue wait in µs).
    Dequeue = 4,
    /// Execution finished, in any status (arg = status code: 0 completed,
    /// 1 deadline, 2 cancelled, 3 unsupported, 4 failed).
    Run = 5,
    /// The one-shot resolver delivered the response (arg = status code).
    Resolve = 6,
    /// A second resolution attempt lost the CAS — an invariant violation
    /// in the making.
    DoubleResolve = 7,
    /// `Ticket::cancel` was called for this request.
    CancelRequest = 8,
    /// The driver re-submitted after a rejection (id = chaos tag of the
    /// failed attempt, arg = attempt number).
    Retry = 9,
    /// A chaos failpoint fired (id = chaos tag, code = interned site name,
    /// arg = fault index within the armed plan).
    FaultFired = 10,
    /// A kernel started on behalf of a traced request (arg = workload
    /// index in `Workload::ALL`).
    KernelStart = 11,
    /// A cancellable kernel passed a superstep boundary.
    KernelStep = 12,
    /// The feedback cost model scaled a request's static cost estimate
    /// (arg = adjusted cost actually charged against the budget).
    CostAdjust = 13,
    /// The request was answered from the epoch-keyed result cache
    /// (arg = snapshot epoch the cached entry was computed under).
    CacheHit = 14,
    /// A mutation batch was applied to the write buffer (id = request id,
    /// arg = the delta-sequence number it advanced the overlay to).
    Mutate = 15,
    /// The background compactor began folding the overlay into a fresh CSR
    /// (arg = the delta-sequence number being compacted).
    CompactStart = 16,
    /// Compaction published a new epoch and reset the overlay (arg = the
    /// new epoch), or gave up on a contended attempt (arg = 0).
    CompactEnd = 17,
    /// An executor formed a coalesced batch behind this request (the batch
    /// leader; arg = number of requests sharing the kernel, including the
    /// leader).
    BatchStart = 18,
    /// The request was drained from its lane into another request's batch
    /// (arg = the leader's request id).
    BatchJoin = 19,
}

impl EventKind {
    /// Stable lowercase name used in dumps and traces.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Reject => "reject",
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::Run => "run",
            EventKind::Resolve => "resolve",
            EventKind::DoubleResolve => "double_resolve",
            EventKind::CancelRequest => "cancel_request",
            EventKind::Retry => "retry",
            EventKind::FaultFired => "fault_fired",
            EventKind::KernelStart => "kernel_start",
            EventKind::KernelStep => "kernel_step",
            EventKind::CostAdjust => "cost_adjust",
            EventKind::CacheHit => "cache_hit",
            EventKind::Mutate => "mutate",
            EventKind::CompactStart => "compact_start",
            EventKind::CompactEnd => "compact_end",
            EventKind::BatchStart => "batch_start",
            EventKind::BatchJoin => "batch_join",
        }
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        use EventKind::*;
        Some(match v {
            1 => Admit,
            2 => Reject,
            3 => Enqueue,
            4 => Dequeue,
            5 => Run,
            6 => Resolve,
            7 => DoubleResolve,
            8 => CancelRequest,
            9 => Retry,
            10 => FaultFired,
            11 => KernelStart,
            12 => KernelStep,
            13 => CostAdjust,
            14 => CacheHit,
            15 => Mutate,
            16 => CompactStart,
            17 => CompactEnd,
            18 => BatchStart,
            19 => BatchJoin,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderEvent {
    /// Microseconds since the process epoch (shared with span timestamps).
    pub ts_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Priority lane (0 point, 1 traversal, 2 analytics, 3 write) or
    /// [`NO_LANE`].
    pub lane: u8,
    /// Interned label code (see [`label`]); 0 = none.
    pub code: u16,
    /// Recorder thread id (see the `threads` list in a snapshot).
    pub tid: u32,
    /// Request id (or chaos tag for `Retry`/`FaultFired`).
    pub id: u64,
    /// Kind-specific argument.
    pub arg: u64,
}

/// One thread's ring: a single-writer array of event slots plus a
/// monotonically increasing event counter. Writers store the four words
/// relaxed and publish with a release store of the counter; readers
/// acquire-load the counter, copy slots, then re-read the counter and drop
/// anything that may have been overwritten meanwhile.
struct Ring {
    slots: Box<[AtomicU64]>,
    capacity: usize,
    head: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let slots = (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect();
        Ring {
            slots,
            capacity,
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, words: [u64; WORDS]) {
        let i = self.head.load(Ordering::Relaxed);
        let base = (i as usize % self.capacity) * WORDS;
        for (off, w) in words.iter().enumerate() {
            self.slots[base + off].store(*w, Ordering::Relaxed);
        }
        self.head.store(i + 1, Ordering::Release);
    }

    /// Copy out the currently-held events as (index, words) pairs, dropping
    /// any entry that a concurrent writer may have overwritten mid-read.
    fn read(&self) -> (Vec<[u64; WORDS]>, u64) {
        let h1 = self.head.load(Ordering::Acquire);
        let start = h1.saturating_sub(self.capacity as u64);
        let mut out = Vec::with_capacity((h1 - start) as usize);
        for i in start..h1 {
            let base = (i as usize % self.capacity) * WORDS;
            let words = std::array::from_fn(|off| self.slots[base + off].load(Ordering::Relaxed));
            out.push((i, words));
        }
        // Entries older than h2 - capacity may have been overwritten while
        // we were copying; drop them so the snapshot has no torn events.
        let h2 = self.head.load(Ordering::Acquire);
        let safe_start = h2.saturating_sub(self.capacity as u64);
        let events = out
            .into_iter()
            .filter(|(i, _)| *i >= safe_start)
            .map(|(_, w)| w)
            .collect();
        (events, h2.saturating_sub(self.capacity as u64))
    }
}

type ThreadEntry = (u32, String, Arc<Ring>);

fn registry() -> &'static Mutex<Vec<ThreadEntry>> {
    static REG: OnceLock<Mutex<Vec<ThreadEntry>>> = OnceLock::new();
    REG.get_or_init(Default::default)
}

fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("GRAPHBIG_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c: &usize| c > 0)
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static RECORDING: AtomicBool = AtomicBool::new(true);
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL: std::cell::RefCell<Option<(u32, Arc<Ring>)>> =
        const { std::cell::RefCell::new(None) };
}

/// Mint a process-unique request id (starts at 1; 0 means "untraced").
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// Pause recording (one relaxed store). Events recorded while paused are
/// dropped at the gate — this is the baseline the overhead bench compares
/// against.
pub fn pause() {
    RECORDING.store(false, Ordering::Relaxed);
}

/// Resume recording after [`pause`]. Recording is on by default.
pub fn resume() {
    RECORDING.store(true, Ordering::Relaxed);
}

/// True when events are being recorded.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Record one event with full addressing: lane, interned label code,
/// request id, and argument.
#[inline]
pub fn record_full(kind: EventKind, lane: u8, code: u16, id: u64, arg: u64) {
    if !recording() {
        return;
    }
    let header = ((kind as u64) << 56) | ((lane as u64) << 48) | ((code as u64) << 32) | tid_word();
    let ts = span::now_us();
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (_, ring) = slot.get_or_insert_with(register_thread);
        ring.push([ts, header, id, arg]);
    });
}

/// Record an event with no lane and no label code.
#[inline]
pub fn record(kind: EventKind, id: u64, arg: u64) {
    record_full(kind, NO_LANE, 0, id, arg);
}

/// Record a lane-scoped event (request lifecycle stages).
#[inline]
pub fn record_lane(kind: EventKind, lane: u8, id: u64, arg: u64) {
    record_full(kind, lane, 0, id, arg);
}

fn register_thread() -> (u32, Arc<Ring>) {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .unwrap_or("unnamed")
        .to_string();
    let ring = Arc::new(Ring::new(capacity()));
    registry()
        .lock()
        .unwrap()
        .push((tid, name, Arc::clone(&ring)));
    (tid, ring)
}

#[inline]
fn tid_word() -> u64 {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, _) = slot.get_or_insert_with(register_thread);
        *tid as u64
    })
}

/// Label interning: small site-name table shared by all dumps. Codes are
/// 1-based; 0 means "no label".
fn labels() -> &'static Mutex<Vec<String>> {
    static LABELS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    LABELS.get_or_init(Default::default)
}

/// Intern `label` and return its code (idempotent; linear scan over a small
/// table, called off the hot path — e.g. once per fired fault).
pub fn intern(label: &str) -> u16 {
    let mut table = labels().lock().unwrap();
    if let Some(pos) = table.iter().position(|l| l == label) {
        return (pos + 1) as u16;
    }
    table.push(label.to_string());
    table.len() as u16
}

/// Resolve an interned code back to its label (None for 0 or unknown).
pub fn label(code: u16) -> Option<String> {
    if code == 0 {
        return None;
    }
    labels().lock().unwrap().get(code as usize - 1).cloned()
}

/// A non-destructive snapshot of every thread's ring.
#[derive(Debug, Clone, Default)]
pub struct RecorderSnapshot {
    /// All captured events, ascending by timestamp.
    pub events: Vec<RecorderEvent>,
    /// `(tid, thread name)` for every thread that ever recorded.
    pub threads: Vec<(u32, String)>,
    /// The interned label table (code `i+1` = `labels[i]`).
    pub labels: Vec<String>,
    /// Events lost to ring wraparound across all threads.
    pub evicted: u64,
}

fn decode(words: [u64; WORDS]) -> Option<RecorderEvent> {
    let kind = EventKind::from_u8((words[1] >> 56) as u8)?;
    Some(RecorderEvent {
        ts_us: words[0],
        kind,
        lane: (words[1] >> 48) as u8,
        code: (words[1] >> 32) as u16,
        tid: words[1] as u32,
        id: words[2],
        arg: words[3],
    })
}

/// Snapshot every ring without draining it. Tolerant of concurrent
/// writers: events that may have been overwritten mid-read are dropped and
/// counted in `evicted` on the next snapshot.
pub fn snapshot() -> RecorderSnapshot {
    let reg = registry().lock().unwrap();
    let mut snap = RecorderSnapshot {
        labels: labels().lock().unwrap().clone(),
        ..Default::default()
    };
    for (tid, name, ring) in reg.iter() {
        let (raw, evicted) = ring.read();
        if !raw.is_empty() || evicted > 0 {
            snap.threads.push((*tid, name.clone()));
        }
        snap.evicted += evicted;
        snap.events.extend(raw.into_iter().filter_map(decode));
    }
    snap.events.sort_by_key(|e| (e.ts_us, e.id));
    snap
}

/// Convert a snapshot to a [`Trace`] for Chrome export: per-request queue /
/// exec / resolve spans placed on the executor's track (one lane per
/// executor thread), and everything else as instant markers on the thread
/// that recorded it.
pub fn to_trace(snap: &RecorderSnapshot) -> Trace {
    use std::collections::BTreeMap;
    let mut trace = Trace {
        events: Vec::new(),
        threads: snap.threads.clone(),
    };
    // Per-request stage timestamps for span reconstruction.
    #[derive(Default)]
    struct Stages {
        enqueue: Option<u64>,
        dequeue: Option<(u64, u32)>,
        run: Option<(u64, u32)>,
        resolve: Option<u64>,
    }
    let mut stages: BTreeMap<u64, Stages> = BTreeMap::new();
    for e in &snap.events {
        let s = stages.entry(e.id).or_default();
        match e.kind {
            EventKind::Enqueue => s.enqueue = Some(e.ts_us),
            EventKind::Dequeue => s.dequeue = Some((e.ts_us, e.tid)),
            EventKind::Run => s.run = Some((e.ts_us, e.tid)),
            EventKind::Resolve => s.resolve = Some(e.ts_us),
            _ => trace.events.push(Event {
                name: e.kind.name(),
                ts_us: e.ts_us,
                dur_us: None,
                tid: e.tid,
                args: vec![("req", e.id as f64), ("arg", e.arg as f64)],
            }),
        }
    }
    for (id, s) in &stages {
        if let (Some(enq), Some((deq, tid))) = (s.enqueue, s.dequeue) {
            trace.events.push(Event {
                name: "engine.queue",
                ts_us: enq,
                dur_us: Some(deq.saturating_sub(enq)),
                tid,
                args: vec![("req", *id as f64)],
            });
        }
        if let (Some((deq, tid)), Some((run, _))) = (s.dequeue, s.run) {
            trace.events.push(Event {
                name: "engine.exec",
                ts_us: deq,
                dur_us: Some(run.saturating_sub(deq)),
                tid,
                args: vec![("req", *id as f64)],
            });
        }
        if let (Some((run, tid)), Some(res)) = (s.run, s.resolve) {
            trace.events.push(Event {
                name: "engine.resolve",
                ts_us: run,
                dur_us: Some(res.saturating_sub(run)),
                tid,
                args: vec![("req", *id as f64)],
            });
        }
    }
    trace.events.sort_by_key(|e| e.ts_us);
    trace
}

const LANE_NAMES: [&str; 4] = ["point", "traversal", "analytics", "write"];

/// Render a snapshot as the dump JSON document.
pub fn to_json(snap: &RecorderSnapshot, reason: &str) -> String {
    let events = snap
        .events
        .iter()
        .map(|e| {
            let b = ObjBuilder::new()
                .push("ts_us", Json::Num(e.ts_us as f64))
                .push("kind", Json::Str(e.kind.name().into()))
                .push("tid", Json::Num(e.tid as f64))
                .push("id", Json::Num(e.id as f64))
                .push("arg", Json::Num(e.arg as f64));
            let b = if (e.lane as usize) < LANE_NAMES.len() {
                b.push("lane", Json::Str(LANE_NAMES[e.lane as usize].into()))
            } else {
                b
            };
            let b = match label(e.code) {
                Some(site) => b.push("site", Json::Str(site)),
                None => b,
            };
            b.build()
        })
        .collect();
    ObjBuilder::new()
        .push("schema", Json::Str(DUMP_SCHEMA.into()))
        .push("reason", Json::Str(reason.into()))
        .push("captured_events", Json::Num(snap.events.len() as f64))
        .push("evicted", Json::Num(snap.evicted as f64))
        .push(
            "threads",
            Json::Arr(
                snap.threads
                    .iter()
                    .map(|(tid, name)| {
                        ObjBuilder::new()
                            .push("tid", Json::Num(*tid as f64))
                            .push("name", Json::Str(name.clone()))
                            .build()
                    })
                    .collect(),
            ),
        )
        .push(
            "labels",
            Json::Arr(snap.labels.iter().cloned().map(Json::Str).collect()),
        )
        .push("events", Json::Arr(events))
        .build()
        .to_pretty()
}

/// Write a dump of the current snapshot to `path`.
pub fn dump_to(path: &str, reason: &str) -> std::io::Result<()> {
    std::fs::write(path, to_json(&snapshot(), reason))
}

fn dump_path() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(Default::default)
}

/// Set the process-wide destination [`auto_dump`] writes to (overrides the
/// `GRAPHBIG_FLIGHT_DUMP` environment variable and the default
/// `flight_recorder_dump.json`).
pub fn set_auto_dump_path(path: &str) {
    *dump_path().lock().unwrap() = Some(path.to_string());
}

/// Dump the flight recorder to the configured path: the
/// [`set_auto_dump_path`] override, else `GRAPHBIG_FLIGHT_DUMP`, else
/// `flight_recorder_dump.json` in the working directory. Returns the path
/// written, or `None` when the write failed (a failing post-mortem dump
/// must never mask the original failure).
pub fn auto_dump(reason: &str) -> Option<String> {
    let path = dump_path()
        .lock()
        .unwrap()
        .clone()
        .or_else(|| std::env::var("GRAPHBIG_FLIGHT_DUMP").ok())
        .unwrap_or_else(|| "flight_recorder_dump.json".to_string());
    dump_to(&path, reason).ok().map(|_| path)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; every test filters by its own
    // freshly-minted ids so parallel tests cannot interfere.

    #[test]
    fn events_round_trip_through_the_ring() {
        resume();
        let id = next_request_id();
        record_lane(EventKind::Admit, 1, id, 77);
        record(EventKind::KernelStep, id, 3);
        let snap = snapshot();
        let mine: Vec<_> = snap.events.iter().filter(|e| e.id == id).collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].kind, EventKind::Admit);
        assert_eq!(mine[0].lane, 1);
        assert_eq!(mine[0].arg, 77);
        assert_eq!(mine[1].kind, EventKind::KernelStep);
        assert_eq!(mine[1].lane, NO_LANE);
        assert!(mine[1].ts_us >= mine[0].ts_us);
        // Snapshots are non-destructive.
        let again = snapshot();
        assert_eq!(again.events.iter().filter(|e| e.id == id).count(), 2);
    }

    #[test]
    fn paused_recorder_drops_events() {
        let id = next_request_id();
        pause();
        record(EventKind::Admit, id, 0);
        resume();
        record(EventKind::Enqueue, id, 0);
        let snap = snapshot();
        let mine: Vec<_> = snap.events.iter().filter(|e| e.id == id).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].kind, EventKind::Enqueue);
    }

    #[test]
    fn ring_wraparound_keeps_the_newest_events() {
        // A dedicated thread gets its own ring; overflow it.
        resume();
        let base = next_request_id();
        let cap = capacity() as u64;
        let handle = std::thread::spawn(move || {
            for i in 0..cap + 10 {
                record(EventKind::KernelStep, base, i);
            }
        });
        handle.join().unwrap();
        let snap = snapshot();
        let mine: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.id == base && e.kind == EventKind::KernelStep)
            .collect();
        assert_eq!(mine.len() as u64, cap, "ring holds exactly capacity");
        assert!(mine.iter().any(|e| e.arg == cap + 9), "newest kept");
        assert!(mine.iter().all(|e| e.arg >= 10), "oldest evicted");
        assert!(snap.evicted >= 10);
    }

    #[test]
    fn interned_labels_resolve() {
        let code = intern("unit.test.site");
        assert_eq!(intern("unit.test.site"), code, "idempotent");
        assert_eq!(label(code).as_deref(), Some("unit.test.site"));
        assert_eq!(label(0), None);
    }

    #[test]
    fn lifecycle_events_become_chrome_spans() {
        resume();
        let id = next_request_id();
        record_lane(EventKind::Admit, 0, id, 5);
        record_lane(EventKind::Enqueue, 0, id, 1);
        record_lane(EventKind::Dequeue, 0, id, 12);
        record_lane(EventKind::Run, 0, id, 0);
        record_lane(EventKind::Resolve, 0, id, 0);
        let snap = snapshot();
        let filtered = RecorderSnapshot {
            events: snap.events.iter().filter(|e| e.id == id).cloned().collect(),
            threads: snap.threads.clone(),
            labels: snap.labels.clone(),
            evicted: 0,
        };
        let trace = to_trace(&filtered);
        let spans: Vec<_> = trace.events.iter().filter(|e| e.dur_us.is_some()).collect();
        let names: Vec<_> = spans.iter().map(|e| e.name).collect();
        assert!(names.contains(&"engine.queue"), "{names:?}");
        assert!(names.contains(&"engine.exec"), "{names:?}");
        assert!(names.contains(&"engine.resolve"), "{names:?}");
        // Admit stays an instant marker.
        assert!(trace
            .events
            .iter()
            .any(|e| e.name == "admit" && e.dur_us.is_none()));
        // The Chrome exporter accepts it.
        let chrome = crate::chrome::to_chrome_json(&trace);
        assert!(chrome.contains("engine.queue"));
    }

    #[test]
    fn dump_json_is_valid_and_labelled() {
        resume();
        let id = next_request_id();
        let code = intern("dump.test.site");
        record_full(EventKind::FaultFired, NO_LANE, code, id, 2);
        let snap = snapshot();
        let text = to_json(&snap, "unit-test");
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(DUMP_SCHEMA));
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("unit-test"));
        let events = doc.get("events").unwrap().as_arr().unwrap();
        let mine = events
            .iter()
            .find(|e| e.get("id").and_then(Json::as_u64) == Some(id))
            .expect("fault event in dump");
        assert_eq!(mine.get("kind").unwrap().as_str(), Some("fault_fired"));
        assert_eq!(mine.get("site").unwrap().as_str(), Some("dump.test.site"));
    }

    #[test]
    fn request_ids_are_unique_and_nonzero() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(a > 0 && b > a);
    }
}
