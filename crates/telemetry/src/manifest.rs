//! The run manifest: one self-describing JSON object per benchmark run.
//!
//! A [`RunManifest`] captures everything needed to interpret or regression-
//! diff a run — what executed (binary, workload, dataset, parameters, git
//! revision, thread count, feature flags), what was measured (the metrics
//! registry snapshot in the shared [`MetricValue`] schema), how time was
//! spent ([`SpanSummary`] per span name), and the rendered result tables.
//! `graphbig-report` diffs two manifests; CI checks a fresh manifest's
//! *structure* against a committed golden one.

use std::collections::BTreeMap;

use crate::json::{parse, Json, ObjBuilder, ParseError};
use crate::metrics::{HistogramSnapshot, MetricSink, MetricValue};
use crate::span::Trace;

/// Current manifest schema identifier.
pub const SCHEMA: &str = "graphbig.run_manifest/v1";

/// A rendered result table (mirrors `graphbig_profile::Table` without the
/// dependency; `Table::to_data`/`from_data` convert).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableData {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

/// Aggregate of all spans sharing one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span name (`bfs.level`, `pool.region`, ...).
    pub name: String,
    /// How many spans were recorded.
    pub count: u64,
    /// Total duration in microseconds.
    pub total_us: u64,
}

/// One run, fully described.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Emitting binary (e.g. `fig05_breakdown`).
    pub bin: String,
    /// Workload name when the run is single-workload.
    pub workload: Option<String>,
    /// Dataset name when the run is single-dataset.
    pub dataset: Option<String>,
    /// Git revision of the tree that produced the run.
    pub git_rev: String,
    /// Worker thread count (0 = not applicable / sequential).
    pub threads: u64,
    /// Active cargo feature flags relevant to the run.
    pub features: Vec<String>,
    /// Free-form run parameters (`scale`, `seed`, ...).
    pub params: BTreeMap<String, String>,
    /// Human-readable remarks the binary used to print to stdout.
    pub notes: Vec<String>,
    /// Metrics snapshot in the shared schema.
    pub metrics: BTreeMap<String, MetricValue>,
    /// Per-name span aggregates.
    pub spans: Vec<SpanSummary>,
    /// Rendered result tables.
    pub tables: Vec<TableData>,
}

impl MetricSink for RunManifest {
    fn counter(&mut self, name: &str, value: u64) {
        self.metrics.counter(name, value);
    }
    fn gauge(&mut self, name: &str, value: f64) {
        self.metrics.gauge(name, value);
    }
    fn histogram(&mut self, name: &str, snapshot: HistogramSnapshot) {
        self.metrics.histogram(name, snapshot);
    }
}

impl RunManifest {
    /// Fresh manifest for `bin` with the git revision auto-detected.
    pub fn new(bin: &str) -> Self {
        RunManifest {
            bin: bin.to_string(),
            git_rev: detect_git_rev(),
            ..Default::default()
        }
    }

    /// Set a string parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) {
        self.params.insert(key.to_string(), value.to_string());
    }

    /// Fold a span trace into per-name summaries (appending to any already
    /// present).
    pub fn absorb_trace(&mut self, trace: &Trace) {
        for (name, count, total_us) in trace.summary() {
            if let Some(existing) = self.spans.iter_mut().find(|s| s.name == name) {
                existing.count += count;
                existing.total_us += total_us;
            } else {
                self.spans.push(SpanSummary {
                    name,
                    count,
                    total_us,
                });
            }
        }
    }

    /// Encode as a JSON document.
    pub fn to_json(&self) -> Json {
        ObjBuilder::new()
            .push("schema", Json::Str(SCHEMA.into()))
            .push("bin", Json::Str(self.bin.clone()))
            .push_opt("workload", self.workload.clone().map(Json::Str))
            .push_opt("dataset", self.dataset.clone().map(Json::Str))
            .push("git_rev", Json::Str(self.git_rev.clone()))
            .push("threads", Json::Num(self.threads as f64))
            .push(
                "features",
                Json::Arr(self.features.iter().cloned().map(Json::Str).collect()),
            )
            .push(
                "params",
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            )
            .push(
                "notes",
                Json::Arr(self.notes.iter().cloned().map(Json::Str).collect()),
            )
            .push(
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            )
            .push(
                "spans",
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            ObjBuilder::new()
                                .push("name", Json::Str(s.name.clone()))
                                .push("count", Json::Num(s.count as f64))
                                .push("total_us", Json::Num(s.total_us as f64))
                                .build()
                        })
                        .collect(),
                ),
            )
            .push(
                "tables",
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|t| {
                            ObjBuilder::new()
                                .push("title", Json::Str(t.title.clone()))
                                .push(
                                    "headers",
                                    Json::Arr(t.headers.iter().cloned().map(Json::Str).collect()),
                                )
                                .push(
                                    "rows",
                                    Json::Arr(
                                        t.rows
                                            .iter()
                                            .map(|r| {
                                                Json::Arr(
                                                    r.iter().cloned().map(Json::Str).collect(),
                                                )
                                            })
                                            .collect(),
                                    ),
                                )
                                .build()
                        })
                        .collect(),
                ),
            )
            .build()
    }

    /// Pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Decode from JSON text, validating the schema identifier.
    pub fn from_json_str(text: &str) -> Result<Self, ManifestError> {
        let doc = parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| ManifestError::Invalid("missing 'schema'".into()))?;
        if schema != SCHEMA {
            return Err(ManifestError::Invalid(format!(
                "unsupported schema '{schema}' (expected '{SCHEMA}')"
            )));
        }
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_default()
        };
        let str_list = |key: &str| -> Vec<String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut m = RunManifest {
            bin: str_field("bin"),
            workload: doc
                .get("workload")
                .and_then(Json::as_str)
                .map(str::to_string),
            dataset: doc
                .get("dataset")
                .and_then(Json::as_str)
                .map(str::to_string),
            git_rev: str_field("git_rev"),
            threads: doc.get("threads").and_then(Json::as_u64).unwrap_or(0),
            features: str_list("features"),
            notes: str_list("notes"),
            ..Default::default()
        };
        if let Some(params) = doc.get("params").and_then(Json::as_obj) {
            for (k, v) in params {
                if let Some(s) = v.as_str() {
                    m.params.insert(k.clone(), s.to_string());
                }
            }
        }
        if let Some(metrics) = doc.get("metrics").and_then(Json::as_obj) {
            for (k, v) in metrics {
                let value = MetricValue::from_json(v)
                    .ok_or_else(|| ManifestError::Invalid(format!("metric '{k}' malformed")))?;
                m.metrics.insert(k.clone(), value);
            }
        }
        if let Some(spans) = doc.get("spans").and_then(Json::as_arr) {
            for s in spans {
                m.spans.push(SpanSummary {
                    name: s
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    count: s.get("count").and_then(Json::as_u64).unwrap_or(0),
                    total_us: s.get("total_us").and_then(Json::as_u64).unwrap_or(0),
                });
            }
        }
        if let Some(tables) = doc.get("tables").and_then(Json::as_arr) {
            for t in tables {
                let headers = t
                    .get("headers")
                    .and_then(Json::as_arr)
                    .map(|hs| {
                        hs.iter()
                            .filter_map(Json::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                let rows = t
                    .get("rows")
                    .and_then(Json::as_arr)
                    .map(|rs| {
                        rs.iter()
                            .filter_map(Json::as_arr)
                            .map(|r| {
                                r.iter()
                                    .filter_map(Json::as_str)
                                    .map(str::to_string)
                                    .collect()
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                m.tables.push(TableData {
                    title: t
                        .get("title")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    headers,
                    rows,
                });
            }
        }
        Ok(m)
    }

    /// Write pretty JSON to `path`.
    pub fn write_to(&self, path: &str) -> Result<(), ManifestError> {
        std::fs::write(path, self.to_json_string()).map_err(ManifestError::Io)
    }

    /// Read and decode a manifest file.
    pub fn read_from(path: &str) -> Result<Self, ManifestError> {
        let text = std::fs::read_to_string(path).map_err(ManifestError::Io)?;
        Self::from_json_str(&text)
    }
}

/// Anything that can go wrong loading or storing a manifest.
#[derive(Debug)]
pub enum ManifestError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The JSON text did not parse.
    Parse(ParseError),
    /// Parsed, but not a valid manifest.
    Invalid(String),
}

impl From<ParseError> for ManifestError {
    fn from(e: ParseError) -> Self {
        ManifestError::Parse(e)
    }
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest I/O: {e}"),
            ManifestError::Parse(e) => write!(f, "manifest JSON: {e}"),
            ManifestError::Invalid(msg) => write!(f, "invalid manifest: {msg}"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// One metric compared across two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric name.
    pub name: String,
    /// Scalar value in the baseline manifest (`None` = absent).
    pub before: Option<f64>,
    /// Scalar value in the candidate manifest (`None` = absent).
    pub after: Option<f64>,
}

impl DiffRow {
    /// Relative change `(after - before) / before`; `None` when undefined.
    pub fn relative_change(&self) -> Option<f64> {
        match (self.before, self.after) {
            (Some(b), Some(a)) if b != 0.0 => Some((a - b) / b),
            _ => None,
        }
    }
}

/// Compare every metric (union of names) of two manifests, scalarized:
/// counters/gauges as-is, histograms by mean.
pub fn diff_metrics(before: &RunManifest, after: &RunManifest) -> Vec<DiffRow> {
    let mut names: Vec<&String> = before.metrics.keys().chain(after.metrics.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| DiffRow {
            name: name.clone(),
            before: before.metrics.get(name).map(MetricValue::scalar),
            after: after.metrics.get(name).map(MetricValue::scalar),
        })
        .collect()
}

/// Structure-only comparison for CI golden checks: schema-level shape must
/// match (same bin, same metric names and kinds, same table titles and
/// headers); values, timings, row contents, and span counts may differ.
/// Returns a list of human-readable mismatches (empty = structurally equal).
pub fn structural_mismatches(golden: &RunManifest, candidate: &RunManifest) -> Vec<String> {
    let mut problems = Vec::new();
    if golden.bin != candidate.bin {
        problems.push(format!(
            "bin mismatch: golden '{}' vs candidate '{}'",
            golden.bin, candidate.bin
        ));
    }
    let kind = |v: &MetricValue| match v {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    };
    for (name, v) in &golden.metrics {
        match candidate.metrics.get(name) {
            None => problems.push(format!("metric missing from candidate: {name}")),
            Some(c) if kind(c) != kind(v) => problems.push(format!(
                "metric kind changed: {name} ({} -> {})",
                kind(v),
                kind(c)
            )),
            Some(_) => {}
        }
    }
    for name in candidate.metrics.keys() {
        if !golden.metrics.contains_key(name) {
            problems.push(format!("metric not in golden: {name}"));
        }
    }
    if golden.tables.len() != candidate.tables.len() {
        problems.push(format!(
            "table count mismatch: golden {} vs candidate {}",
            golden.tables.len(),
            candidate.tables.len()
        ));
    }
    for (g, c) in golden.tables.iter().zip(&candidate.tables) {
        if g.headers != c.headers {
            problems.push(format!(
                "table '{}' headers changed: {:?} -> {:?}",
                g.title, g.headers, c.headers
            ));
        }
    }
    problems
}

fn detect_git_rev() -> String {
    if let Ok(rev) = std::env::var("GRAPHBIG_GIT_REV") {
        return rev;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    fn sample() -> RunManifest {
        let mut m = RunManifest {
            bin: "fig05_breakdown".into(),
            workload: Some("BFS".into()),
            dataset: Some("LDBC".into()),
            git_rev: "abc123def456".into(),
            threads: 16,
            features: vec!["telemetry".into()],
            ..Default::default()
        };
        m.param("scale", 0.03);
        m.param("seed", "0x6b1f");
        m.notes.push("paper: average in-framework time 76%".into());
        m.counter("machine.instructions", 123_456);
        m.gauge("machine.ipc", 0.42);
        m.histogram(
            "bfs.frontier.occupancy",
            HistogramSnapshot {
                count: 4,
                sum: 130,
                buckets: vec![(2, 1), (64, 3)],
            },
        );
        m.spans.push(SpanSummary {
            name: "bfs.level".into(),
            count: 9,
            total_us: 1234,
        });
        m.tables.push(TableData {
            title: "Figure 5".into(),
            headers: vec!["workload".into(), "backend".into()],
            rows: vec![vec!["BFS".into(), "91.0%".into()]],
        });
        m
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let text = m.to_json_string();
        let back = RunManifest::from_json_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample()
            .to_json_string()
            .replace("run_manifest/v1", "run_manifest/v999");
        assert!(matches!(
            RunManifest::from_json_str(&text),
            Err(ManifestError::Invalid(_))
        ));
        assert!(RunManifest::from_json_str("not json").is_err());
    }

    #[test]
    fn diff_covers_union_of_metrics() {
        let mut a = sample();
        let mut b = sample();
        a.counter("only.in.a", 5);
        b.counter("machine.instructions", 150_000); // overwrite
        let rows = diff_metrics(&a, &b);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        let instr = by_name("machine.instructions");
        assert_eq!(instr.before, Some(123_456.0));
        assert_eq!(instr.after, Some(150_000.0));
        let change = instr.relative_change().unwrap();
        assert!((change - (150_000.0 - 123_456.0) / 123_456.0).abs() < 1e-12);
        let only_a = by_name("only.in.a");
        assert_eq!(only_a.after, None);
        assert_eq!(only_a.relative_change(), None);
    }

    #[test]
    fn structural_check_ignores_values_but_catches_shape_drift() {
        let golden = sample();
        let mut same_shape = sample();
        same_shape.counter("machine.instructions", 999);
        same_shape.tables[0].rows.clear(); // row contents are values
        same_shape.spans.clear(); // span counts are timing-dependent
        assert!(structural_mismatches(&golden, &same_shape).is_empty());

        let mut drifted = sample();
        drifted.metrics.remove("machine.ipc");
        drifted.counter("new.metric", 1);
        drifted.tables[0].headers.push("extra".into());
        let problems = structural_mismatches(&golden, &drifted);
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn absorb_trace_merges_by_name() {
        use crate::span::{Event, Trace};
        let mut m = RunManifest::new("t");
        let t = Trace {
            events: vec![Event {
                name: "bfs.level",
                ts_us: 0,
                dur_us: Some(10),
                tid: 0,
                args: vec![],
            }],
            threads: vec![],
        };
        m.absorb_trace(&t);
        m.absorb_trace(&t);
        assert_eq!(m.spans.len(), 1);
        assert_eq!(m.spans[0].count, 2);
        assert_eq!(m.spans[0].total_us, 20);
    }

    #[test]
    fn git_rev_env_override() {
        std::env::set_var("GRAPHBIG_GIT_REV", "feedface");
        assert_eq!(RunManifest::new("x").git_rev, "feedface");
        std::env::remove_var("GRAPHBIG_GIT_REV");
    }
}
