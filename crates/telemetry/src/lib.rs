//! # graphbig-telemetry
//!
//! The workspace-wide observability layer: every run of the suite can be
//! self-describing, machine-readable, and regression-diffable.
//!
//! Three pieces, one schema:
//!
//! * [`span`] — phase spans and instant events (`span!("bfs.level",
//!   depth = 3)`) with monotonic timestamps and per-thread buffers;
//!   [`chrome`] exports them as Chrome `trace_event` JSON that loads in
//!   `chrome://tracing` / Perfetto with one track per pool worker.
//!   **Zero-cost when disabled**: without the `spans` cargo feature the
//!   recording path compiles to no-ops (downstream crates re-expose the
//!   gate as their `telemetry` feature — default-on in `graphbig-bench`,
//!   default-off in the framework/runtime crates); with the feature on, a
//!   relaxed atomic load gates recording at runtime.
//! * [`metrics`] — counters, gauges, and log₂-bucket histograms in a
//!   name-keyed [`Registry`](metrics::Registry), with the
//!   [`MetricSink`](metrics::MetricSink) trait as the common funnel: the
//!   runtime's wall-clock metrics and the machine model's simulated
//!   `PerfCounters` serialize into the same `subsystem.component.metric`
//!   namespace.
//! * [`manifest`] — the [`RunManifest`](manifest::RunManifest): one JSON
//!   object per run carrying workload, dataset, params, git revision,
//!   thread count, feature flags, the metrics snapshot, span summaries,
//!   and result tables. `graphbig-report` diffs two manifests and CI
//!   checks structure against a committed golden file.
//!
//! Two serving-side additions ride on the same schema: [`recorder`], the
//! **always-on flight recorder** (no cargo feature — lock-free per-thread
//! rings of compact request-lifecycle events, dumped as JSON on failure),
//! and [`window`], sliding-window latency estimators
//! ([`WindowedHistogram`](window::WindowedHistogram) + [`Ewma`](window::Ewma))
//! behind the engine's live `engine.window.*` SLO stats.
//!
//! The crate pulls in nothing outside the workspace; [`json`] re-exports
//! the in-tree `graphbig-json` crate (which grew out of this crate's
//! hand-rolled writer) so emission works identically in every build
//! environment.

#![warn(missing_docs)]

pub use graphbig_json as json;

pub mod chrome;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod window;

pub use manifest::{diff_metrics, structural_mismatches, RunManifest, SpanSummary, TableData};
pub use metrics::{Counter, Histogram, MetricSink, MetricValue, Registry};
pub use span::{disable, enable, enabled, instant, take_trace, SpanGuard, Trace};
pub use window::{Ewma, WindowedHistogram};

/// Feature flags compiled into this build of the telemetry layer, for
/// manifest `features` lists.
pub fn compiled_features() -> Vec<String> {
    let mut f = Vec::new();
    if cfg!(feature = "spans") {
        f.push("telemetry".to_string());
    }
    f
}
