//! GraphBIG-RS workspace root. This crate exists to host the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`);
//! the library surface lives in the `graphbig` umbrella crate.
pub use graphbig;
